//! The compact wire format shared by the durable epoch journal
//! ([`crate::journal`]) and the process-isolated shard workers
//! ([`crate::proc`]).
//!
//! Everything a shard worker needs to run in another address space —
//! header layouts, topologies, action tables, subspace plans, routed
//! update blocks, shard results and recovery checkpoints — round-trips
//! through a small length-prefixed frame encoding:
//!
//! ```text
//! frame := kind:u8  len:u32le  payload:[u8; len]  crc:u32le
//! ```
//!
//! where `crc` is CRC-32 (IEEE) over `kind` followed by the payload.
//! The checksum turns torn writes and bit flips into detectable
//! [`WireError`]s instead of silently corrupted models: the journal
//! reader tolerates a torn tail (the crash happened mid-append), and
//! the process supervisor treats a corrupt frame as a fatal child
//! failure (kill + respawn + replay).
//!
//! Encoding is hand-rolled — little-endian fixed-width integers,
//! length-prefixed strings and sequences — to keep the workspace
//! dependency-free. It is a *transport* format, not an archival one:
//! both ends are always the same build of this crate.

use crate::verifier::PropertyReport;
use flash_bdd::{EngineTelemetry, OpKind, OpStats};
use flash_imt::{ImtTuning, ShadowStrategy, SubspaceSpec, UpdateStats};
use flash_netmodel::{
    Action, ActionId, DeviceId, FieldId, Match, MatchKind, Rewrite, Rule, RuleOp, RuleUpdate,
};
use std::io::{Read, Write};
use std::time::Duration;

/// Upper bound on a single frame's payload; anything larger is treated
/// as corruption (a garbage length prefix), not a real frame.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// A wire-level failure: truncated input, bad tag, checksum mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub msg: String,
}

impl WireError {
    pub fn new(msg: impl Into<String>) -> Self {
        WireError { msg: msg.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::new(format!("io: {e}"))
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Cursor over a received payload.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::new(format!(
                "truncated payload: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// A wire-encodable value.
pub trait Wire: Sized {
    fn put(&self, w: &mut Vec<u8>);
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn put(&self, w: &mut Vec<u8>) {
                w.extend_from_slice(&self.to_le_bytes());
            }
            fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let b = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i64);

impl Wire for usize {
    fn put(&self, w: &mut Vec<u8>) {
        (*self as u64).put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = u64::get(r)?;
        usize::try_from(v).map_err(|_| WireError::new("usize overflow"))
    }
}

impl Wire for bool {
    fn put(&self, w: &mut Vec<u8>) {
        w.push(*self as u8);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::get(r)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::new(format!("bad bool tag {t}"))),
        }
    }
}

impl Wire for f64 {
    fn put(&self, w: &mut Vec<u8>) {
        self.to_bits().put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::get(r)?))
    }
}

impl Wire for Duration {
    fn put(&self, w: &mut Vec<u8>) {
        // Nanoseconds, saturating at ~584 years: plenty for telemetry.
        u64::try_from(self.as_nanos()).unwrap_or(u64::MAX).put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Duration::from_nanos(u64::get(r)?))
    }
}

impl Wire for String {
    fn put(&self, w: &mut Vec<u8>) {
        self.len().put(w);
        w.extend_from_slice(self.as_bytes());
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = usize::get(r)?;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("invalid utf-8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, w: &mut Vec<u8>) {
        self.len().put(w);
        for v in self {
            v.put(w);
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = usize::get(r)?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(T::get(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, w: &mut Vec<u8>) {
        match self {
            None => w.push(0),
            Some(v) => {
                w.push(1);
                v.put(w);
            }
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::get(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::get(r)?)),
            t => Err(WireError::new(format!("bad option tag {t}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, w: &mut Vec<u8>) {
        self.0.put(w);
        self.1.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::get(r)?, B::get(r)?))
    }
}

impl Wire for DeviceId {
    fn put(&self, w: &mut Vec<u8>) {
        self.0.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DeviceId(u32::get(r)?))
    }
}

impl Wire for ActionId {
    fn put(&self, w: &mut Vec<u8>) {
        self.0.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ActionId(u32::get(r)?))
    }
}

impl Wire for MatchKind {
    fn put(&self, w: &mut Vec<u8>) {
        match *self {
            MatchKind::Any => w.push(0),
            MatchKind::Exact(v) => {
                w.push(1);
                v.put(w);
            }
            MatchKind::Prefix { value, len } => {
                w.push(2);
                value.put(w);
                len.put(w);
            }
            MatchKind::Suffix { value, len } => {
                w.push(3);
                value.put(w);
                len.put(w);
            }
            MatchKind::Ternary { value, mask } => {
                w.push(4);
                value.put(w);
                mask.put(w);
            }
            MatchKind::Range { lo, hi } => {
                w.push(5);
                lo.put(w);
                hi.put(w);
            }
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::get(r)? {
            0 => MatchKind::Any,
            1 => MatchKind::Exact(u64::get(r)?),
            2 => MatchKind::Prefix { value: u64::get(r)?, len: u32::get(r)? },
            3 => MatchKind::Suffix { value: u64::get(r)?, len: u32::get(r)? },
            4 => MatchKind::Ternary { value: u64::get(r)?, mask: u64::get(r)? },
            5 => MatchKind::Range { lo: u64::get(r)?, hi: u64::get(r)? },
            t => return Err(WireError::new(format!("bad match tag {t}"))),
        })
    }
}

impl Wire for Match {
    fn put(&self, w: &mut Vec<u8>) {
        self.kinds().to_vec().put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Match::from_kinds(Vec::<MatchKind>::get(r)?))
    }
}

impl Wire for Rule {
    fn put(&self, w: &mut Vec<u8>) {
        self.mat.put(w);
        self.priority.put(w);
        self.action.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Rule::new(Match::get(r)?, i64::get(r)?, ActionId::get(r)?))
    }
}

impl Wire for RuleOp {
    fn put(&self, w: &mut Vec<u8>) {
        w.push(match self {
            RuleOp::Insert => 0,
            RuleOp::Delete => 1,
        });
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::get(r)? {
            0 => Ok(RuleOp::Insert),
            1 => Ok(RuleOp::Delete),
            t => Err(WireError::new(format!("bad rule-op tag {t}"))),
        }
    }
}

impl Wire for RuleUpdate {
    fn put(&self, w: &mut Vec<u8>) {
        self.op.put(w);
        self.rule.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let op = RuleOp::get(r)?;
        let rule = Rule::get(r)?;
        Ok(match op {
            RuleOp::Insert => RuleUpdate::insert(rule),
            RuleOp::Delete => RuleUpdate::delete(rule),
        })
    }
}

impl Wire for Rewrite {
    fn put(&self, w: &mut Vec<u8>) {
        self.field.put(w);
        self.value.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Rewrite { field: u32::get(r)?, value: u64::get(r)? })
    }
}

impl Wire for Action {
    fn put(&self, w: &mut Vec<u8>) {
        match self {
            Action::Drop => w.push(0),
            Action::Forward(hops) => {
                w.push(1);
                hops.put(w);
            }
            Action::Tunnel { hops, rewrite } => {
                w.push(2);
                hops.put(w);
                rewrite.put(w);
            }
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::get(r)? {
            0 => Action::Drop,
            1 => Action::Forward(Vec::get(r)?),
            2 => Action::Tunnel { hops: Vec::get(r)?, rewrite: Rewrite::get(r)? },
            t => return Err(WireError::new(format!("bad action tag {t}"))),
        })
    }
}

impl Wire for SubspaceSpec {
    fn put(&self, w: &mut Vec<u8>) {
        self.field.0.put(w);
        self.value.put(w);
        self.len.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SubspaceSpec {
            field: FieldId(u32::get(r)?),
            value: u64::get(r)?,
            len: u32::get(r)?,
        })
    }
}

impl Wire for ShadowStrategy {
    fn put(&self, w: &mut Vec<u8>) {
        w.push(match self {
            ShadowStrategy::Auto => 0,
            ShadowStrategy::Accumulated => 1,
            ShadowStrategy::Trie => 2,
        });
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::get(r)? {
            0 => ShadowStrategy::Auto,
            1 => ShadowStrategy::Accumulated,
            2 => ShadowStrategy::Trie,
            t => return Err(WireError::new(format!("bad shadow tag {t}"))),
        })
    }
}

impl Wire for ImtTuning {
    fn put(&self, w: &mut Vec<u8>) {
        self.match_memo_capacity.put(w);
        self.shadow_strategy.put(w);
        self.class_index.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ImtTuning {
            match_memo_capacity: usize::get(r)?,
            shadow_strategy: ShadowStrategy::get(r)?,
            class_index: bool::get(r)?,
        })
    }
}

impl Wire for PropertyReport {
    fn put(&self, w: &mut Vec<u8>) {
        match self {
            PropertyReport::LoopFound { cycle } => {
                w.push(0);
                cycle.put(w);
            }
            PropertyReport::LoopFreedomHolds => w.push(1),
            PropertyReport::Satisfied { requirement } => {
                w.push(2);
                requirement.put(w);
            }
            PropertyReport::Unsatisfied { requirement } => {
                w.push(3);
                requirement.put(w);
            }
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::get(r)? {
            0 => PropertyReport::LoopFound { cycle: Vec::get(r)? },
            1 => PropertyReport::LoopFreedomHolds,
            2 => PropertyReport::Satisfied { requirement: String::get(r)? },
            3 => PropertyReport::Unsatisfied { requirement: String::get(r)? },
            t => return Err(WireError::new(format!("bad report tag {t}"))),
        })
    }
}

impl Wire for OpStats {
    fn put(&self, w: &mut Vec<u8>) {
        self.calls.put(w);
        self.cache_hits.put(w);
        self.cache_misses.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(OpStats {
            calls: u64::get(r)?,
            cache_hits: u64::get(r)?,
            cache_misses: u64::get(r)?,
        })
    }
}

impl Wire for EngineTelemetry {
    fn put(&self, w: &mut Vec<u8>) {
        self.ops.put(w);
        self.per_op.to_vec().put(w);
        self.live_nodes.put(w);
        self.allocated_nodes.put(w);
        self.peak_live_nodes.put(w);
        self.unique_entries.put(w);
        self.occupancy.put(w);
        self.roots_live.put(w);
        self.gc_runs.put(w);
        self.gc_reclaimed_nodes.put(w);
        self.gc_pause_total.put(w);
        self.gc_pause_max.put(w);
        self.approx_bytes.put(w);
        self.cache_evictions.put(w);
        self.cache_admission_rejects.put(w);
        self.cache_occupancy_by_op.to_vec().put(w);
        self.cache_capacity.put(w);
        self.freelist_reuses.put(w);
        self.cell_probes.put(w);
        self.disjoint_skips.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let ops = u64::get(r)?;
        let per: Vec<OpStats> = Vec::get(r)?;
        if per.len() != OpKind::COUNT {
            return Err(WireError::new(format!(
                "per-op stats arity {} != {}",
                per.len(),
                OpKind::COUNT
            )));
        }
        let mut per_op = [OpStats::default(); OpKind::COUNT];
        per_op.copy_from_slice(&per);
        let live_nodes = usize::get(r)?;
        let allocated_nodes = usize::get(r)?;
        let peak_live_nodes = usize::get(r)?;
        let unique_entries = usize::get(r)?;
        let occupancy = f64::get(r)?;
        let roots_live = usize::get(r)?;
        let gc_runs = u64::get(r)?;
        let gc_reclaimed_nodes = u64::get(r)?;
        let gc_pause_total = Duration::get(r)?;
        let gc_pause_max = Duration::get(r)?;
        let approx_bytes = usize::get(r)?;
        let cache_evictions = u64::get(r)?;
        let cache_admission_rejects = u64::get(r)?;
        let occ: Vec<u64> = Vec::get(r)?;
        if occ.len() != OpKind::COUNT {
            return Err(WireError::new(format!(
                "cache-occupancy arity {} != {}",
                occ.len(),
                OpKind::COUNT
            )));
        }
        let mut cache_occupancy_by_op = [0u64; OpKind::COUNT];
        cache_occupancy_by_op.copy_from_slice(&occ);
        Ok(EngineTelemetry {
            ops,
            per_op,
            live_nodes,
            allocated_nodes,
            peak_live_nodes,
            unique_entries,
            occupancy,
            roots_live,
            gc_runs,
            gc_reclaimed_nodes,
            gc_pause_total,
            gc_pause_max,
            approx_bytes,
            cache_evictions,
            cache_admission_rejects,
            cache_occupancy_by_op,
            cache_capacity: usize::get(r)?,
            freelist_reuses: u64::get(r)?,
            cell_probes: u64::get(r)?,
            disjoint_skips: u64::get(r)?,
        })
    }
}

impl Wire for UpdateStats {
    fn put(&self, w: &mut Vec<u8>) {
        self.updates_accepted.put(w);
        self.updates_filtered.put(w);
        self.flushes.put(w);
        self.atomic_overwrites.put(w);
        self.compact_overwrites.put(w);
        self.match_memo_hits.put(w);
        self.match_memo_misses.put(w);
        self.classes_probed.put(w);
        self.classes_pruned.put(w);
        self.index_rebuilds.put(w);
        self.shadow_acc_blocks.put(w);
        self.shadow_trie_blocks.put(w);
        self.engine.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(UpdateStats {
            updates_accepted: u64::get(r)?,
            updates_filtered: u64::get(r)?,
            flushes: u64::get(r)?,
            atomic_overwrites: u64::get(r)?,
            compact_overwrites: u64::get(r)?,
            match_memo_hits: u64::get(r)?,
            match_memo_misses: u64::get(r)?,
            classes_probed: u64::get(r)?,
            classes_pruned: u64::get(r)?,
            index_rebuilds: u64::get(r)?,
            shadow_acc_blocks: u64::get(r)?,
            shadow_trie_blocks: u64::get(r)?,
            engine: EngineTelemetry::get(r)?,
        })
    }
}

/// Per-frame match dictionary for rule-heavy frames.
///
/// A block or checkpoint routinely carries thousands of rules drawn from a
/// far smaller set of distinct matches (every ToR prefix recurs once per
/// device on the path). Instead of serializing each rule's full constraint
/// vector, the encoder collects the distinct matches — cheap now that
/// [`Match`] is an interned 4-byte handle, so dedup is a `MatchId` map
/// probe — writes each structural form exactly once, and encodes rules as
/// `u32` dictionary indices. Ids are process-local, so the *dictionary
/// position* (dense, first-occurrence order) goes on the wire, never the
/// raw `MatchId`; the decoder re-interns each entry into its own table.
#[derive(Default)]
struct MatchDict {
    index: std::collections::HashMap<flash_netmodel::MatchId, u32>,
    order: Vec<Match>,
}

impl MatchDict {
    /// The dictionary index for `m`, assigning the next slot on first use.
    fn index_of(&mut self, m: &Match) -> u32 {
        *self.index.entry(m.id()).or_insert_with(|| {
            self.order.push(*m);
            (self.order.len() - 1) as u32
        })
    }

    /// Encodes the table itself (each distinct match's structural form,
    /// in index order). Must precede the rule body in the payload.
    fn put(&self, w: &mut Vec<u8>) {
        self.order.len().put(w);
        for m in &self.order {
            let kinds = m.kinds();
            kinds.len().put(w);
            for k in kinds {
                k.put(w);
            }
        }
    }

    /// Decodes a table, re-interning every entry into this process's
    /// global match table.
    fn get_table(r: &mut WireReader<'_>) -> Result<Vec<Match>, WireError> {
        let n = usize::get(r)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let k = usize::get(r)?;
            let mut kinds = Vec::with_capacity(k);
            for _ in 0..k {
                kinds.push(MatchKind::get(r)?);
            }
            out.push(Match::from_kinds(kinds));
        }
        Ok(out)
    }

    fn lookup(table: &[Match], idx: u32) -> Result<Match, WireError> {
        table
            .get(idx as usize)
            .copied()
            .ok_or_else(|| WireError::new(format!("match dict index {idx} out of range")))
    }
}

/// Encodes a rule against a frame dictionary: index + priority + action.
fn put_rule_dicted(rule: &Rule, dict: &mut MatchDict, w: &mut Vec<u8>) {
    dict.index_of(&rule.mat).put(w);
    rule.priority.put(w);
    rule.action.put(w);
}

fn get_rule_dicted(table: &[Match], r: &mut WireReader<'_>) -> Result<Rule, WireError> {
    let mat = MatchDict::lookup(table, u32::get(r)?)?;
    Ok(Rule::new(mat, i64::get(r)?, ActionId::get(r)?))
}

impl Wire for crate::shard::UpdateBlock {
    fn put(&self, w: &mut Vec<u8>) {
        self.seq.put(w);
        // Rules reference the dictionary by index, but the dictionary is
        // only known after walking them — encode the body to the side,
        // then emit dict before body so the decoder reads it first.
        let mut dict = MatchDict::default();
        let mut body = Vec::new();
        self.updates.len().put(&mut body);
        for (dev, u) in &self.updates {
            dev.put(&mut body);
            u.op.put(&mut body);
            put_rule_dicted(&u.rule, &mut dict, &mut body);
        }
        dict.put(w);
        w.extend_from_slice(&body);
        self.routed.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let seq = u64::get(r)?;
        let table = MatchDict::get_table(r)?;
        let n = usize::get(r)?;
        let mut updates = Vec::with_capacity(n);
        for _ in 0..n {
            let dev = DeviceId::get(r)?;
            let op = RuleOp::get(r)?;
            let rule = get_rule_dicted(&table, r)?;
            updates.push((
                dev,
                match op {
                    RuleOp::Insert => RuleUpdate::insert(rule),
                    RuleOp::Delete => RuleUpdate::delete(rule),
                },
            ));
        }
        Ok(crate::shard::UpdateBlock { seq, updates, routed: Vec::get(r)? })
    }
}

impl Wire for crate::shard::ShardResult {
    fn put(&self, w: &mut Vec<u8>) {
        self.seq.put(w);
        self.shard.put(w);
        self.worker.put(w);
        self.skipped.put(w);
        self.cpu.put(w);
        self.classes.put(w);
        self.ops.put(w);
        self.bytes.put(w);
        self.engine.put(w);
        self.reports.put(w);
        self.class_keys.put(w);
        self.stats.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(crate::shard::ShardResult {
            seq: u64::get(r)?,
            shard: usize::get(r)?,
            worker: usize::get(r)?,
            skipped: bool::get(r)?,
            cpu: Duration::get(r)?,
            classes: usize::get(r)?,
            ops: u64::get(r)?,
            bytes: usize::get(r)?,
            engine: EngineTelemetry::get(r)?,
            reports: Vec::get(r)?,
            class_keys: Vec::get(r)?,
            stats: UpdateStats::get(r)?,
        })
    }
}

/// Recovery state of one shard at checkpoint time: the device FIBs
/// (from which the inverse model is a deterministic function), the
/// synchronized-device set, the verdict keys already emitted, the
/// distinct class fingerprints (an integrity check for restore), and
/// the cumulative model-manager work counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardCheckpoint {
    /// Global shard (subspace) index.
    pub shard: usize,
    /// Whether the shard's verifier had been constructed at all.
    pub built: bool,
    /// Per-device FIB rule snapshots, default wildcard omitted.
    pub fibs: Vec<(DeviceId, Vec<Rule>)>,
    /// Devices the loop verifier had marked synchronized.
    pub synced: Vec<DeviceId>,
    /// Verdict keys already emitted by the shard's verifier.
    pub emitted: Vec<String>,
    /// Sorted distinct class fingerprints at checkpoint time.
    pub class_fingerprints: Vec<u64>,
    /// Cumulative `ModelManager` work counters at checkpoint time.
    pub stats: UpdateStats,
}

impl Wire for ShardCheckpoint {
    fn put(&self, w: &mut Vec<u8>) {
        self.shard.put(w);
        self.built.put(w);
        // FIB snapshots dominate checkpoint size and repeat matches across
        // devices; encode them against a per-checkpoint match dictionary.
        let mut dict = MatchDict::default();
        let mut body = Vec::new();
        self.fibs.len().put(&mut body);
        for (dev, rules) in &self.fibs {
            dev.put(&mut body);
            rules.len().put(&mut body);
            for rule in rules {
                put_rule_dicted(rule, &mut dict, &mut body);
            }
        }
        dict.put(w);
        w.extend_from_slice(&body);
        self.synced.put(w);
        self.emitted.put(w);
        self.class_fingerprints.put(w);
        self.stats.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let shard = usize::get(r)?;
        let built = bool::get(r)?;
        let table = MatchDict::get_table(r)?;
        let nd = usize::get(r)?;
        let mut fibs = Vec::with_capacity(nd);
        for _ in 0..nd {
            let dev = DeviceId::get(r)?;
            let nr = usize::get(r)?;
            let mut rules = Vec::with_capacity(nr);
            for _ in 0..nr {
                rules.push(get_rule_dicted(&table, r)?);
            }
            fibs.push((dev, rules));
        }
        Ok(ShardCheckpoint {
            shard,
            built,
            fibs,
            synced: Vec::get(r)?,
            emitted: Vec::get(r)?,
            class_fingerprints: Vec::get(r)?,
            stats: UpdateStats::get(r)?,
        })
    }
}

/// A whole worker's recovery state: one [`ShardCheckpoint`] per owned
/// shard, the last block sequence folded in, and the `(seq, shard)`
/// results already released to the aggregator (so a cold restore never
/// double-reports).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerCheckpoint {
    pub worker: usize,
    /// Highest block seq reflected in the shard snapshots; `u64::MAX`
    /// when no block had arrived yet.
    pub last_seq: u64,
    /// `(seq, shard)` results already delivered to the aggregator.
    pub reported: Vec<(u64, u64)>,
    pub shards: Vec<ShardCheckpoint>,
}

impl Wire for WorkerCheckpoint {
    fn put(&self, w: &mut Vec<u8>) {
        self.worker.put(w);
        self.last_seq.put(w);
        self.reported.put(w);
        self.shards.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WorkerCheckpoint {
            worker: usize::get(r)?,
            last_seq: u64::get(r)?,
            reported: Vec::get(r)?,
            shards: Vec::get(r)?,
        })
    }
}

/// Deterministic faults a child process injects into itself (wired
/// through the Hello frame; each fires at most once per pool run — the
/// parent latches a fired fault out of subsequent Hellos).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChildFaults {
    /// Abort the process at the start of this block ordinal (1-based).
    pub kill_at_block: Option<u64>,
    /// At this block ordinal, sleep for `.1` milliseconds while holding
    /// the output lock (starves heartbeats: a detectable hang).
    pub hang_at_block: Option<(u64, u64)>,
    /// Corrupt the payload of this outbound result frame (1-based).
    pub corrupt_frame: Option<u64>,
}

impl Wire for ChildFaults {
    fn put(&self, w: &mut Vec<u8>) {
        self.kill_at_block.put(w);
        self.hang_at_block.put(w);
        self.corrupt_frame.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ChildFaults {
            kill_at_block: Option::get(r)?,
            hang_at_block: Option::get(r)?,
            corrupt_frame: Option::get(r)?,
        })
    }
}

/// The configuration frame a `flash-shardd` child receives first: the
/// network universe plus this worker's shard assignment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProcHello {
    pub worker: usize,
    /// Global shard indices this worker owns.
    pub shards: Vec<usize>,
    /// Header layout: `(field name, width in bits)` in field order.
    pub layout: Vec<(String, u32)>,
    /// Devices in id order: `(name, is_external)`.
    pub devices: Vec<(String, bool)>,
    /// Directed links as `(from, to)` device ids.
    pub links: Vec<(u32, u32)>,
    /// Interned actions in id order.
    pub actions: Vec<Action>,
    /// The full subspace plan (indexed by global shard id).
    pub subspaces: Vec<SubspaceSpec>,
    /// Verify all-pair loop freedom (the only property the wire
    /// supports; requirement ASTs stay in-process).
    pub loop_freedom: bool,
    pub bst: u64,
    pub tuning: ImtTuning,
    pub collect_class_keys: bool,
    /// Interval at which the child emits heartbeat frames, in ms.
    pub heartbeat_ms: u64,
    pub faults: ChildFaults,
}

impl Wire for ProcHello {
    fn put(&self, w: &mut Vec<u8>) {
        self.worker.put(w);
        self.shards.put(w);
        self.layout.put(w);
        self.devices.put(w);
        self.links.put(w);
        self.actions.put(w);
        self.subspaces.put(w);
        self.loop_freedom.put(w);
        self.bst.put(w);
        self.tuning.put(w);
        self.collect_class_keys.put(w);
        self.heartbeat_ms.put(w);
        self.faults.put(w);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ProcHello {
            worker: usize::get(r)?,
            shards: Vec::get(r)?,
            layout: Vec::get(r)?,
            devices: Vec::get(r)?,
            links: Vec::get(r)?,
            actions: Vec::get(r)?,
            subspaces: Vec::get(r)?,
            loop_freedom: bool::get(r)?,
            bst: u64::get(r)?,
            tuning: ImtTuning::get(r)?,
            collect_class_keys: bool::get(r)?,
            heartbeat_ms: u64::get(r)?,
            faults: ChildFaults::get(r)?,
        })
    }
}

/// Frame type tags. Parent→child: `Hello`..`Shutdown`; child→parent:
/// `Result`..`Heartbeat`. The journal reuses `Block`, `Collect`,
/// `Checkpoint`, `Ingest` and `Seal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    Hello = 1,
    Block = 2,
    Collect = 3,
    CheckpointReq = 4,
    Restore = 5,
    Shutdown = 6,
    /// A bulk-ingestion block (buffered, no results until `Seal`).
    /// Payload is an [`crate::shard::UpdateBlock`] with the sentinel
    /// seq `u64::MAX`.
    Ingest = 7,
    /// Ends a bulk-ingestion snapshot: payload is `(seq, devices)`.
    Seal = 8,
    Result = 16,
    Checkpoint = 17,
    Heartbeat = 18,
    CollectDone = 19,
}

impl FrameKind {
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::Block,
            3 => FrameKind::Collect,
            4 => FrameKind::CheckpointReq,
            5 => FrameKind::Restore,
            6 => FrameKind::Shutdown,
            7 => FrameKind::Ingest,
            8 => FrameKind::Seal,
            16 => FrameKind::Result,
            17 => FrameKind::Checkpoint,
            18 => FrameKind::Heartbeat,
            19 => FrameKind::CollectDone,
            _ => return None,
        })
    }
}

/// Serializes a frame: `kind, len, payload, crc32(kind ‖ payload)`.
pub fn frame_bytes(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 9);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let mut crc_input = Vec::with_capacity(payload.len() + 1);
    crc_input.push(kind as u8);
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    w.write_all(&frame_bytes(kind, payload))?;
    Ok(())
}

/// Encodes `value` and writes it as one frame.
pub fn write_value_frame<T: Wire>(
    w: &mut impl Write,
    kind: FrameKind,
    value: &T,
) -> Result<(), WireError> {
    let mut payload = Vec::new();
    value.put(&mut payload);
    write_frame(w, kind, &payload)
}

/// How a frame read ended.
pub enum FrameRead {
    /// A complete, checksum-valid frame.
    Frame(FrameKind, Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
}

/// Reads one frame. `Err` covers torn frames (EOF mid-frame), unknown
/// kinds, oversized lengths, and checksum mismatches — the caller
/// decides whether that is a tolerable journal tail or a fatal
/// transport failure.
pub fn read_frame(r: &mut impl Read) -> Result<FrameRead, WireError> {
    let mut kind_byte = [0u8; 1];
    match r.read(&mut kind_byte) {
        Ok(0) => return Ok(FrameRead::Eof),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e.into()),
    }
    let kind = FrameKind::from_u8(kind_byte[0])
        .ok_or_else(|| WireError::new(format!("unknown frame kind {}", kind_byte[0])))?;
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|e| WireError::new(format!("torn frame header: {e}")))?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(WireError::new(format!("frame length {len} exceeds cap")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| WireError::new(format!("torn frame payload: {e}")))?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|e| WireError::new(format!("torn frame checksum: {e}")))?;
    let mut crc_input = Vec::with_capacity(payload.len() + 1);
    crc_input.push(kind_byte[0]);
    crc_input.extend_from_slice(&payload);
    if crc32(&crc_input) != u32::from_le_bytes(crc_bytes) {
        return Err(WireError::new("frame checksum mismatch"));
    }
    Ok(FrameRead::Frame(kind, payload))
}

/// Decodes a full payload as one `T`, requiring it to be consumed
/// exactly.
pub fn decode<T: Wire>(payload: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(payload);
    let v = T::get(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::new("trailing bytes after payload"));
    }
    Ok(v)
}

/// Encodes one `T` as a standalone payload.
pub fn encode<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.put(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_netmodel::HeaderLayout;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode(&v);
        let back: T = decode(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(3.25f64);
        roundtrip(String::from("dst"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip(Duration::from_micros(1234));
        roundtrip((DeviceId(3), 9u64));
    }

    #[test]
    fn rules_and_updates_roundtrip() {
        let layout = HeaderLayout::new(&[("dst", 8), ("src", 8)]);
        let m = Match::any(&layout)
            .with(FieldId(0), MatchKind::Prefix { value: 0xC0, len: 4 })
            .with(FieldId(1), MatchKind::Range { lo: 2, hi: 9 });
        roundtrip(m);
        roundtrip(Rule::new(m, -5, ActionId(3)));
        roundtrip(RuleUpdate::insert(Rule::new(m, 1, ActionId(1))));
        roundtrip(RuleUpdate::delete(Rule::new(m, 2, ActionId(2))));
    }

    #[test]
    fn blocks_and_results_roundtrip() {
        let layout = HeaderLayout::dst_only();
        let block = crate::shard::UpdateBlock {
            seq: 7,
            updates: vec![(
                DeviceId(1),
                RuleUpdate::insert(Rule::new(Match::dst_prefix(&layout, 10, 8), 1, ActionId(2))),
            )],
            routed: vec![vec![0], vec![]],
        };
        let bytes = encode(&block);
        let back: crate::shard::UpdateBlock = decode(&bytes).unwrap();
        assert_eq!(back.seq, 7);
        assert_eq!(back.updates, block.updates);
        assert_eq!(back.routed, block.routed);

        roundtrip(PropertyReport::LoopFound { cycle: vec![DeviceId(0), DeviceId(1)] });
        roundtrip(PropertyReport::Satisfied { requirement: "r".into() });
        roundtrip(UpdateStats::default());
        roundtrip(EngineTelemetry::default());
    }

    #[test]
    fn match_dict_dedups_repeated_matches() {
        // 256 updates drawn from 8 distinct matches: the dicted frame must
        // round-trip exactly AND be markedly smaller than encoding every
        // rule's full constraint vector inline (the pre-dictionary format,
        // still used by the standalone `Rule` codec).
        let layout = HeaderLayout::new(&[("dst", 32), ("src", 32)]);
        let mats: Vec<Match> = (0..8u64)
            .map(|i| {
                Match::any(&layout)
                    .with(FieldId(0), MatchKind::Prefix { value: i << 24, len: 8 })
                    .with(FieldId(1), MatchKind::Range { lo: i, hi: i + 100 })
            })
            .collect();
        let updates: Vec<(DeviceId, RuleUpdate)> = (0..256)
            .map(|i| {
                let rule = Rule::new(mats[i % 8], i as i64, ActionId((i % 5) as u32));
                let u = if i % 3 == 0 {
                    RuleUpdate::delete(rule)
                } else {
                    RuleUpdate::insert(rule)
                };
                (DeviceId((i % 16) as u32), u)
            })
            .collect();
        let block =
            crate::shard::UpdateBlock { seq: 9, updates: updates.clone(), routed: vec![vec![0]] };
        let bytes = encode(&block);
        let back: crate::shard::UpdateBlock = decode(&bytes).unwrap();
        assert_eq!(back.seq, block.seq);
        assert_eq!(back.updates, block.updates);
        assert_eq!(back.routed, block.routed);

        // Size of the legacy inline encoding: every update with its full match.
        let inline: usize = updates
            .iter()
            .map(|(d, u)| encode(d).len() + encode(u).len())
            .sum();
        assert!(
            bytes.len() * 2 < inline,
            "dicted frame ({} B) should be well under half the inline form ({inline} B)",
            bytes.len()
        );

        // Out-of-range dictionary index must be a decode error, not a panic.
        let mut corrupt = Vec::new();
        block.seq.put(&mut corrupt);
        MatchDict::default().put(&mut corrupt); // empty dict
        1usize.put(&mut corrupt);
        DeviceId(0).put(&mut corrupt);
        RuleOp::Insert.put(&mut corrupt);
        7u32.put(&mut corrupt); // dangling index
        0i64.put(&mut corrupt);
        ActionId(0).put(&mut corrupt);
        Vec::<Vec<usize>>::new().put(&mut corrupt);
        assert!(decode::<crate::shard::UpdateBlock>(&corrupt).is_err());
    }

    #[test]
    fn checkpoints_and_hello_roundtrip() {
        let layout = HeaderLayout::dst_only();
        let cp = WorkerCheckpoint {
            worker: 1,
            last_seq: 42,
            reported: vec![(41, 0), (42, 2)],
            shards: vec![ShardCheckpoint {
                shard: 2,
                built: true,
                fibs: vec![(
                    DeviceId(0),
                    vec![Rule::new(Match::dst_prefix(&layout, 3, 8), 1, ActionId(1))],
                )],
                synced: vec![DeviceId(0), DeviceId(1)],
                emitted: vec!["noloop".into()],
                class_fingerprints: vec![1, 2, 3],
                stats: UpdateStats::default(),
            }],
        };
        roundtrip(cp);
        roundtrip(ProcHello {
            worker: 0,
            shards: vec![0, 2],
            layout: vec![("dst".into(), 8)],
            devices: vec![("a".into(), false), ("x".into(), true)],
            links: vec![(0, 1)],
            actions: vec![Action::Drop, Action::Forward(vec![DeviceId(1)])],
            subspaces: vec![SubspaceSpec::whole()],
            loop_freedom: true,
            bst: u64::MAX,
            tuning: ImtTuning::default(),
            collect_class_keys: true,
            heartbeat_ms: 200,
            faults: ChildFaults {
                kill_at_block: Some(3),
                hang_at_block: None,
                corrupt_frame: Some(1),
            },
        });
    }

    #[test]
    fn frames_roundtrip_and_detect_corruption() {
        let payload = encode(&vec![1u64, 2, 3]);
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Block, &payload).unwrap();
        write_frame(&mut buf, FrameKind::Collect, &[]).unwrap();

        let mut cursor = std::io::Cursor::new(buf.clone());
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Frame(FrameKind::Block, p) => assert_eq!(p, payload),
            _ => panic!("expected block frame"),
        }
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Frame(FrameKind::Collect, p) => assert!(p.is_empty()),
            _ => panic!("expected collect frame"),
        }
        assert!(matches!(read_frame(&mut cursor).unwrap(), FrameRead::Eof));

        // Flip one payload byte: checksum must catch it.
        let mut corrupt = buf.clone();
        corrupt[7] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(corrupt);
        assert!(read_frame(&mut cursor).is_err());

        // Truncate mid-frame: torn, not EOF.
        let torn = &buf[..buf.len() / 2];
        let mut cursor = std::io::Cursor::new(torn.to_vec());
        let first = read_frame(&mut cursor);
        assert!(first.is_err() || matches!(first, Ok(FrameRead::Frame(..))));
    }
}
