//! The CE2D dispatcher (Figure 1, right box; §4.1).
//!
//! The dispatcher consumes epoch-tagged agent messages, maintains the
//! happens-before tracker, manages the life cycle of per-epoch verifier
//! sets, and routes each device's updates:
//!
//! * updates tagged with an **active** epoch go to that epoch's verifier
//!   and mark the device synchronized there;
//! * updates tagged with an epoch that is already superseded are queued
//!   in the device's history; they reach future verifiers when those are
//!   seeded by replay (the paper's "flushes the updates from the device's
//!   update queue");
//! * when an epoch is deactivated its verifiers are destroyed.

use crate::error::FlashError;
use crate::verifier::{Property, PropertyReport, SubspaceVerifier, SubspaceVerifierConfig};
use flash_ce2d::{EpochTag, EpochTracker};
use flash_imt::SubspaceSpec;
use flash_netmodel::{ActionTable, DeviceId, HeaderLayout, RuleUpdate, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the dispatcher.
#[derive(Clone)]
pub struct DispatcherConfig {
    pub topo: Arc<Topology>,
    pub actions: Arc<ActionTable>,
    pub layout: HeaderLayout,
    /// Subspaces to verify (one verifier per subspace per active epoch).
    pub subspaces: Vec<SubspaceSpec>,
    pub bst: usize,
    pub properties: Vec<Property>,
}

/// A deterministic report with the virtual time it became available.
#[derive(Clone, Debug)]
pub struct TimedReport {
    /// Arrival time of the message that triggered the verdict.
    pub at: u64,
    pub epoch: EpochTag,
    /// Index of the reporting subspace.
    pub subspace: usize,
    pub report: PropertyReport,
}

struct EpochVerifiers {
    verifiers: Vec<SubspaceVerifier>,
}

/// The CE2D dispatcher.
pub struct Dispatcher {
    config: DispatcherConfig,
    tracker: EpochTracker,
    /// Full per-device update history `(epoch, updates)` in arrival order.
    history: HashMap<DeviceId, Vec<(EpochTag, Vec<RuleUpdate>)>>,
    active: HashMap<EpochTag, EpochVerifiers>,
    reports: Vec<TimedReport>,
    /// Verifiers created over the lifetime (for the §5.5 cost model).
    pub verifiers_created: u64,
}

impl Dispatcher {
    /// Validates the configuration before constructing. `bst == 0`
    /// would make Fast IMT never flush a block boundary correctly, so
    /// it is rejected rather than silently misbehaving.
    pub fn try_new(config: DispatcherConfig) -> Result<Self, FlashError> {
        if config.bst == 0 {
            return Err(FlashError::Config(
                "bst (block size threshold) must be >= 1".into(),
            ));
        }
        Ok(Self::new_unchecked(config))
    }

    /// Infallible constructor kept for existing callers; panics on a
    /// configuration [`Self::try_new`] rejects.
    pub fn new(config: DispatcherConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid DispatcherConfig: {e}"))
    }

    fn new_unchecked(config: DispatcherConfig) -> Self {
        Dispatcher {
            config,
            tracker: EpochTracker::new(),
            history: HashMap::new(),
            active: HashMap::new(),
            reports: Vec::new(),
            verifiers_created: 0,
        }
    }

    fn make_verifiers(&mut self) -> EpochVerifiers {
        let verifiers = self
            .config
            .subspaces
            .iter()
            .map(|&subspace| {
                self.verifiers_created += 1;
                SubspaceVerifier::new(SubspaceVerifierConfig {
                    topo: self.config.topo.clone(),
                    actions: self.config.actions.clone(),
                    layout: self.config.layout.clone(),
                    subspace,
                    bst: self.config.bst,
                    properties: self.config.properties.clone(),
                    tuning: flash_imt::ImtTuning::default(),
                    gc_node_threshold: flash_bdd::PredEngine::gc_threshold_from_env(
                        flash_bdd::DEFAULT_GC_NODE_THRESHOLD,
                    ),
                    cache: flash_bdd::CacheConfig::from_env(),
                })
            })
            .collect();
        EpochVerifiers { verifiers }
    }

    /// Processes one agent message; returns the deterministic reports it
    /// produced (also appended to [`Self::reports`]).
    pub fn on_message(
        &mut self,
        at: u64,
        device: DeviceId,
        epoch: EpochTag,
        updates: Vec<RuleUpdate>,
    ) -> Vec<TimedReport> {
        // 1. Record history.
        self.history
            .entry(device)
            .or_default()
            .push((epoch, updates.clone()));

        // 2. Track epochs.
        let ev = self.tracker.observe(device, epoch);
        for dead in &ev.deactivated {
            self.active.remove(dead);
        }

        let mut new_reports = Vec::new();

        // 3. New active epoch: seed a verifier set by replaying history.
        if ev.newly_active {
            let mut set = self.make_verifiers();
            let synced = self.tracker.synchronized(epoch);
            for (dev, log) in &self.history {
                let all: Vec<RuleUpdate> =
                    log.iter().flat_map(|(_, us)| us.iter().cloned()).collect();
                let is_synced = synced.contains(dev);
                if all.is_empty() && !is_synced {
                    continue;
                }
                // An empty update set still marks a synchronized device
                // (the agent's "nothing changed in this epoch" report).
                for (i, v) in set.verifiers.iter_mut().enumerate() {
                    if is_synced {
                        for r in v.ingest_synchronized(*dev, all.clone()) {
                            new_reports.push(TimedReport {
                                at,
                                epoch,
                                subspace: i,
                                report: r,
                            });
                        }
                    } else {
                        v.ingest_unsynchronized(*dev, all.clone());
                    }
                }
            }
            self.active.insert(epoch, set);
        } else if self.tracker.is_active(epoch) {
            // 4. Updates for an existing active epoch.
            if let Some(set) = self.active.get_mut(&epoch) {
                for (i, v) in set.verifiers.iter_mut().enumerate() {
                    for r in v.ingest_synchronized(device, updates.clone()) {
                        new_reports.push(TimedReport {
                            at,
                            epoch,
                            subspace: i,
                            report: r,
                        });
                    }
                }
            }
        }
        // 5. Inactive epoch: nothing beyond history (already recorded).

        self.reports.extend(new_reports.clone());
        new_reports
    }

    /// All deterministic reports so far, in arrival order.
    pub fn reports(&self) -> &[TimedReport] {
        &self.reports
    }

    /// Currently active epochs.
    pub fn active_epochs(&self) -> Vec<EpochTag> {
        self.active.keys().copied().collect()
    }

    /// Aggregate predicate-engine telemetry across every live verifier
    /// (all subspaces of all active epochs). Additive counters sum;
    /// see [`flash_bdd::EngineTelemetry::absorb`].
    pub fn engine_telemetry(&self) -> flash_bdd::EngineTelemetry {
        let mut total = flash_bdd::EngineTelemetry::default();
        for set in self.active.values() {
            for v in &set.verifiers {
                total.absorb(&v.manager().engine().telemetry());
            }
        }
        total
    }

    /// The tracker (inspection).
    pub fn tracker(&self) -> &EpochTracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_netmodel::{Match, Rule};

    fn triangle() -> (Arc<Topology>, Vec<DeviceId>, Arc<ActionTable>, HeaderLayout) {
        let mut t = Topology::new();
        let a = t.add_device("a");
        let b = t.add_device("b");
        let c = t.add_device("c");
        t.add_bilink(a, b);
        t.add_bilink(b, c);
        t.add_bilink(a, c);
        let layout = HeaderLayout::dst_only();
        let mut at = ActionTable::new();
        for d in [a, b, c] {
            at.fwd(d);
        }
        (Arc::new(t), vec![a, b, c], Arc::new(at), layout)
    }

    fn dispatcher(
        topo: &Arc<Topology>,
        actions: &Arc<ActionTable>,
        layout: &HeaderLayout,
    ) -> Dispatcher {
        Dispatcher::new(DispatcherConfig {
            topo: topo.clone(),
            actions: actions.clone(),
            layout: layout.clone(),
            subspaces: vec![SubspaceSpec::whole()],
            bst: 1,
            properties: vec![Property::LoopFreedom],
        })
    }

    #[test]
    fn consistent_loop_reported_within_one_epoch() {
        let (topo, ids, actions, layout) = triangle();
        let mut d = dispatcher(&topo, &actions, &layout);
        let m = Match::dst_prefix(&layout, 10, 8);
        let (fwd_a, fwd_b) = (flash_netmodel::ActionId(1), flash_netmodel::ActionId(2));
        d.on_message(0, ids[0], 77, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_b))]);
        let r = d.on_message(5, ids[1], 77, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_a))]);
        assert_eq!(r.len(), 1);
        assert!(matches!(r[0].report, PropertyReport::LoopFound { .. }));
        assert_eq!(r[0].epoch, 77);
        assert_eq!(r[0].at, 5);
    }

    #[test]
    fn transient_cross_epoch_loop_not_reported() {
        // a's *old* epoch points at b; b's *new* epoch points at a. A
        // naive single-model verifier would report a loop; CE2D must not,
        // because the two FIBs belong to different epochs.
        let (topo, ids, actions, layout) = triangle();
        let mut d = dispatcher(&topo, &actions, &layout);
        let m = Match::dst_prefix(&layout, 10, 8);
        let (fwd_a, fwd_b, fwd_c) =
            (flash_netmodel::ActionId(1), flash_netmodel::ActionId(2), flash_netmodel::ActionId(3));
        // Epoch 1: a→b (b,c silent so far).
        d.on_message(0, ids[0], 1, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_b))]);
        // Epoch 2 arrives at b first: b→a. (In epoch 2, a will route to c.)
        d.on_message(5, ids[1], 2, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_a))]);
        // No deterministic loop may be reported: within epoch 1 only a is
        // synced; within epoch 2 only b is synced.
        assert!(d.reports().iter().all(|r| !matches!(r.report, PropertyReport::LoopFound { .. })));
        // a reaches epoch 2 and reroutes to c: clean.
        d.on_message(
            9,
            ids[0],
            2,
            vec![
                RuleUpdate::delete(Rule::new(m, 1, fwd_b)),
                RuleUpdate::insert(Rule::new(m, 2, fwd_c)),
            ],
        );
        let r = d.on_message(12, ids[2], 2, vec![]);
        assert!(d.reports().iter().all(|r| !matches!(r.report, PropertyReport::LoopFound { .. })));
        assert!(r.iter().any(|x| x.report == PropertyReport::LoopFreedomHolds));
    }

    #[test]
    fn late_device_history_replayed_into_new_epoch() {
        // c reports epoch 1 (stale) after epoch 2 is active; its rules
        // must still appear in epoch 2's model once c reaches epoch 2.
        let (topo, ids, actions, layout) = triangle();
        let mut d = dispatcher(&topo, &actions, &layout);
        let m = Match::dst_prefix(&layout, 10, 8);
        let (fwd_a, fwd_b) = (flash_netmodel::ActionId(1), flash_netmodel::ActionId(2));
        d.on_message(0, ids[0], 1, vec![]);
        d.on_message(1, ids[0], 2, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_b))]);
        // Epoch 1 is now inactive; c's stale message is queued only.
        d.on_message(2, ids[2], 1, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_a))]);
        assert_eq!(d.active_epochs(), vec![2]);
        // b reports epoch 2 with b→a: loop a→b? a→b and b→a: yes, loop —
        // proving a's epoch-2 rule was present.
        let r = d.on_message(3, ids[1], 2, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_a))]);
        assert!(r.iter().any(|x| matches!(x.report, PropertyReport::LoopFound { .. })));
    }

    #[test]
    fn deactivated_epoch_verifiers_destroyed() {
        let (topo, ids, actions, layout) = triangle();
        let mut d = dispatcher(&topo, &actions, &layout);
        d.on_message(0, ids[0], 1, vec![]);
        assert_eq!(d.active_epochs(), vec![1]);
        d.on_message(1, ids[0], 2, vec![]);
        assert_eq!(d.active_epochs(), vec![2]);
        assert_eq!(d.verifiers_created, 2);
    }

    #[test]
    fn dead_epoch_updates_reach_next_epoch_verifiers_via_replay() {
        // Updates tagged with an epoch that is *already superseded* go
        // only into the device's history queue; they must still reach
        // the verifiers of the next newly-activated epoch through the
        // seeding replay ("flushes the updates from the device's update
        // queue").
        let (topo, ids, actions, layout) = triangle();
        let mut d = dispatcher(&topo, &actions, &layout);
        let m = Match::dst_prefix(&layout, 10, 8);
        let (fwd_a, fwd_c) = (flash_netmodel::ActionId(1), flash_netmodel::ActionId(3));
        // Epoch 1 active, then superseded by epoch 2.
        d.on_message(0, ids[0], 1, vec![]);
        d.on_message(1, ids[0], 2, vec![]);
        assert_eq!(d.active_epochs(), vec![2]);
        // c reports the dead epoch 1 with c→a: queued in history only —
        // no active verifier for epoch 1 exists anymore.
        let r = d.on_message(2, ids[2], 1, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_a))]);
        assert!(r.is_empty(), "dead-epoch updates produce no immediate reports");
        assert_eq!(d.active_epochs(), vec![2]);
        // b activates epoch 3: the new verifier set is seeded by replay,
        // which must include c's dead-epoch rule (c unsynchronized).
        d.on_message(3, ids[1], 3, vec![]);
        // a joins epoch 3 with a→c; no loop yet — c is not synchronized.
        let r = d.on_message(4, ids[0], 3, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_c))]);
        assert!(r.iter().all(|x| !matches!(x.report, PropertyReport::LoopFound { .. })));
        // c synchronizes into epoch 3 with no new updates: the loop
        // a→c→a closes using the rule that arrived on the dead epoch,
        // proving history replay carried it into epoch 3's verifiers.
        let r = d.on_message(5, ids[2], 3, vec![]);
        assert!(
            r.iter().any(|x| matches!(x.report, PropertyReport::LoopFound { .. })),
            "replayed dead-epoch rule must be visible: {r:?}"
        );
    }

    #[test]
    fn try_new_rejects_zero_bst() {
        let (topo, _, actions, layout) = triangle();
        let cfg = DispatcherConfig {
            topo,
            actions,
            layout,
            subspaces: vec![SubspaceSpec::whole()],
            bst: 0,
            properties: vec![Property::LoopFreedom],
        };
        assert!(matches!(
            Dispatcher::try_new(cfg),
            Err(crate::error::FlashError::Config(_))
        ));
    }

    #[test]
    fn two_concurrent_active_epochs() {
        let (topo, ids, actions, layout) = triangle();
        let mut d = dispatcher(&topo, &actions, &layout);
        d.on_message(0, ids[0], 10, vec![]);
        d.on_message(1, ids[1], 20, vec![]);
        let mut active = d.active_epochs();
        active.sort_unstable();
        assert_eq!(active, vec![10, 20]);
    }
}
