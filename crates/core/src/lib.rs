//! # flash-dpv
//!
//! A from-scratch Rust implementation of **Flash** (SIGCOMM 2022): fast,
//! consistent data plane verification for large-scale network settings.
//!
//! Flash combines two techniques:
//!
//! * **Fast IMT** (`flash-imt`) — block update processing that transforms
//!   a storm of native rule updates into a handful of conflict-free
//!   inverse-model overwrites via the MR² algorithm;
//! * **CE2D** (`flash-ce2d`) — consistent, efficient early detection:
//!   epoch-tagged updates are dispatched to per-epoch verifiers that
//!   answer verification questions *before* all devices have reported,
//!   without ever reporting a transient error.
//!
//! This crate is the system of Figure 1: the [`Dispatcher`] (epoch
//! tracking, update queues, verifier life cycle), the
//! [`SubspaceVerifier`] (model manager + CE2D verifiers for one packet
//! subspace) and the [`parallel`] runner that executes one verifier per
//! subspace across OS threads.
//!
//! ## Quickstart
//!
//! ```
//! use flash_core::{Property, SubspaceVerifier, SubspaceVerifierConfig};
//! use flash_netmodel::*;
//! use std::sync::Arc;
//!
//! // A triangle network.
//! let mut topo = Topology::new();
//! let a = topo.add_device("a");
//! let b = topo.add_device("b");
//! let c = topo.add_device("c");
//! topo.add_bilink(a, b);
//! topo.add_bilink(b, c);
//! topo.add_bilink(a, c);
//! let topo = Arc::new(topo);
//!
//! let layout = HeaderLayout::dst_only();
//! let mut actions = ActionTable::new();
//! let fwd_b = actions.fwd(b);
//! let fwd_a = actions.fwd(a);
//! let actions = Arc::new(actions);
//!
//! let mut v = SubspaceVerifier::new(SubspaceVerifierConfig {
//!     topo: topo.clone(),
//!     actions: actions.clone(),
//!     layout: layout.clone(),
//!     subspace: flash_imt::SubspaceSpec::whole(),
//!     bst: 1,
//!     properties: vec![Property::LoopFreedom],
//!     tuning: flash_imt::ImtTuning::default(),
//!     gc_node_threshold: flash_bdd::DEFAULT_GC_NODE_THRESHOLD,
//!     cache: flash_bdd::CacheConfig::default(),
//! });
//!
//! // a→b then b→a: a consistent loop, detected with only 2/3 devices.
//! let m = Match::dst_prefix(&layout, 10, 8);
//! v.ingest_synchronized(a, vec![RuleUpdate::insert(Rule::new(m.clone(), 1, fwd_b))]);
//! let reports = v.ingest_synchronized(b, vec![RuleUpdate::insert(Rule::new(m, 1, fwd_a))]);
//! assert!(reports.iter().any(|r| matches!(r, flash_core::PropertyReport::LoopFound { .. })));
//! ```

pub mod adapter;
pub mod channel;
pub mod dispatcher;
pub mod error;
pub mod fault;
pub mod journal;
pub mod live;
pub mod parallel;
mod pool;
pub mod proc;
pub mod query;
pub mod shard;
pub mod supervise;
pub mod verifier;
pub mod wire;

pub use channel::{Backpressure, ChannelStats, SendOutcome};
pub use dispatcher::{Dispatcher, DispatcherConfig, TimedReport};
pub use error::FlashError;
pub use fault::{CorruptSpec, FaultPlan, FaultStats, HangSpec, KillSpec};
pub use journal::{EpochJournal, JournalEntry, JournalTail};
pub use live::{
    DrainOutcome, LiveConfig, LiveMessage, LiveReport, LiveService, LiveVerifier,
    ServiceStats, WorkerStats,
};
pub use parallel::{parallel_model_construction, ParallelStats, SubspaceStats};
pub use query::{
    AnswerKind, PendingAnswer, Query, QueryAnswer, QueryHub, QueryRejected, QueryService,
    QueryServiceConfig, QuerySession, TenantStats,
};
pub use shard::{
    DegradedShard, EpochReport, RecoveryOptions, ShardDrainOutcome, ShardMode, ShardPool,
    ShardPoolConfig, ShardResult, UpdateBlock,
};
pub use supervise::{RestartPolicy, WorkerHealth};
pub use verifier::{Property, PropertyReport, SubspaceVerifier, SubspaceVerifierConfig};
pub use wire::{ChildFaults, ShardCheckpoint, WorkerCheckpoint};
