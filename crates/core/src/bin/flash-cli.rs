//! `flash-cli` — verify a network described in the text adapter format.
//!
//! ```text
//! flash-cli check <network-file> [--classes] [--quiet]
//! flash-cli journal <journal-file>
//! ```
//!
//! `check` loads the topology, FIBs and requirements from the file (see
//! `flash_core::adapter` for the format), streams every FIB through Fast
//! IMT, runs consistent early detection after each device, and prints
//! the verdicts plus model statistics. Exit code 1 when any property is
//! violated.
//!
//! `journal` pretty-prints a durable epoch journal (a `worker-N.fjl`
//! file written by `RecoveryOptions::journal_dir`): the checkpoint it
//! leads with, the jobs journaled since, and whether the tail is clean
//! or torn by a crash. Exit code 1 on a torn tail.

use flash_core::adapter::{format_prefix, parse_network};
use flash_core::{
    EpochJournal, JournalEntry, JournalTail, PropertyReport, SubspaceVerifier,
    SubspaceVerifierConfig,
};
use flash_imt::SubspaceSpec;
use std::process::ExitCode;

const USAGE: &str =
    "usage: flash-cli check <network-file> [--classes] [--quiet]\n       flash-cli journal <journal-file>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut show_classes = false;
    let mut quiet = false;
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        Some("check") => {}
        Some("journal") => {
            let Some(path) = it.next() else {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            };
            return print_journal(path);
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    for a in it {
        match a.as_str() {
            "--classes" => show_classes = true,
            "--quiet" => quiet = true,
            f => files.push(f.to_string()),
        }
    }
    let Some(path) = files.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let net = match parse_network(&input) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        println!(
            "loaded {}: {} devices, {} links, {} FIBs, {} properties",
            path,
            net.topo.device_count(),
            net.topo.link_count(),
            net.fibs.len(),
            net.properties.len()
        );
    }

    let mut verifier = SubspaceVerifier::new(SubspaceVerifierConfig {
        topo: net.topo.clone(),
        actions: net.actions.clone(),
        layout: net.layout.clone(),
        subspace: SubspaceSpec::whole(),
        bst: usize::MAX,
        properties: net.properties.clone(),
        tuning: flash_imt::ImtTuning::default(),
    });

    let mut violated = false;
    let t0 = std::time::Instant::now();
    for (dev, rules) in &net.fibs {
        let updates = rules
            .iter()
            .cloned()
            .map(flash_netmodel::RuleUpdate::insert)
            .collect();
        for report in verifier.ingest_synchronized(*dev, updates) {
            match &report {
                PropertyReport::LoopFound { cycle } => {
                    violated = true;
                    let names: Vec<&str> =
                        cycle.iter().map(|d| net.topo.name(*d)).collect();
                    println!("VIOLATION loop: {}", names.join(" -> "));
                }
                PropertyReport::Unsatisfied { requirement } => {
                    violated = true;
                    println!("VIOLATION requirement {requirement:?} cannot be satisfied");
                }
                PropertyReport::Satisfied { requirement } => {
                    if !quiet {
                        println!("ok: requirement {requirement:?} satisfied");
                    }
                }
                PropertyReport::LoopFreedomHolds => {
                    if !quiet {
                        println!("ok: loop freedom holds");
                    }
                }
            }
        }
    }
    let elapsed = t0.elapsed();

    let mgr = verifier.manager();
    if !quiet {
        let stats = mgr.stats();
        println!(
            "model: {} equivalence classes from {} updates ({} atomic -> {} compact overwrites), \
             {} predicate ops, {:.1?}",
            mgr.model().len(),
            stats.updates_accepted,
            stats.atomic_overwrites,
            stats.compact_overwrites,
            mgr.engine().op_count(),
            elapsed
        );
        println!("predicates: {}", stats.engine.summary());
    }
    if show_classes {
        print_classes(&mut verifier, &net);
    }

    if violated {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Pretty-prints a durable epoch journal: checkpoint summary, journaled
/// jobs, tail status.
fn print_journal(path: &str) -> ExitCode {
    let (entries, tail) = match EpochJournal::read_entries(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!("{path}: {} entries", entries.len());
    for (i, e) in entries.iter().enumerate() {
        match e {
            JournalEntry::Checkpoint(cp) => {
                let last = if cp.last_seq == u64::MAX {
                    "-".to_string()
                } else {
                    cp.last_seq.to_string()
                };
                println!(
                    "  [{i}] checkpoint worker={} last_seq={last} shards={} delivered={}",
                    cp.worker,
                    cp.shards.len(),
                    cp.reported.len()
                );
                for s in &cp.shards {
                    println!(
                        "        shard {} built={} fib_rules={} synced={} classes={} \
                         updates_accepted={}",
                        s.shard,
                        s.built,
                        s.fibs.iter().map(|(_, rs)| rs.len()).sum::<usize>(),
                        s.synced.len(),
                        s.class_fingerprints.len(),
                        s.stats.updates_accepted
                    );
                }
            }
            JournalEntry::Block(b) => {
                println!(
                    "  [{i}] block seq={} updates={} shards_touched={}",
                    b.seq,
                    b.updates.len(),
                    b.routed.iter().filter(|r| !r.is_empty()).count()
                );
            }
            JournalEntry::Collect => println!("  [{i}] collect"),
        }
    }
    match tail {
        JournalTail::Clean => {
            println!("tail: clean");
            ExitCode::SUCCESS
        }
        JournalTail::Torn(msg) => {
            println!("tail: torn ({msg}) — entries above were recovered");
            ExitCode::from(1)
        }
    }
}

/// Prints every equivalence class as a witness prefix plus its action
/// vector.
fn print_classes(verifier: &mut SubspaceVerifier, net: &flash_core::adapter::NetworkFile) {
    let topo = net.topo.clone();
    let actions = net.actions.clone();
    let mgr = verifier.manager_mut();
    let (engine, pat, model) = mgr.parts_mut();
    println!("equivalence classes:");
    for (i, e) in model.entries().iter().enumerate() {
        let frac = engine.sat_fraction(&e.pred);
        let witness = engine
            .any_sat(&e.pred)
            .map(|bits| {
                let v: u64 = bits.iter().fold(0, |acc, &b| (acc << 1) | b as u64);
                format_prefix(v, 32)
            })
            .unwrap_or_else(|| "-".into());
        let vector: Vec<String> = pat
            .entries(e.vector)
            .iter()
            .map(|(d, a)| {
                let hops: Vec<&str> = actions
                    .next_hops(*a)
                    .iter()
                    .map(|h| topo.name(*h))
                    .collect();
                format!(
                    "{}→{}",
                    topo.name(*d),
                    if hops.is_empty() {
                        "drop".to_string()
                    } else {
                        hops.join("|")
                    }
                )
            })
            .collect();
        println!(
            "  [{}] {:>6.2}% of space, witness {} : {}",
            i,
            frac * 100.0,
            witness,
            if vector.is_empty() {
                "all-default".to_string()
            } else {
                vector.join(", ")
            }
        );
    }
}
