//! `flash-cli` — verify a network described in the text adapter format.
//!
//! ```text
//! flash-cli check <network-file> [--classes] [--quiet] [--ingest-threads N]
//! flash-cli journal <journal-file>
//! flash-cli dataset generate <dir> [--k N] [--hostbits N] [--prefixes N] [--quiet]
//! flash-cli dataset load <dir> [--classes] [--quiet] [--ingest-threads N]
//! ```
//!
//! `check` verifies a text network file (see `flash_core::adapter` for
//! the format) with a two-pass streaming ingest: pass one parses the
//! topology, actions and requirements (dropping rule bodies), pass two
//! streams each device's FIB into Fast IMT as its block completes — the
//! whole rule set is never resident. Verdicts plus model statistics are
//! printed. Exit code 1 when any property is violated.
//!
//! With `--ingest-threads N >= 1` (the default: the machine's available
//! parallelism, or the `FLASH_INGEST_THREADS` env var), pass two runs
//! the pipelined snapshot path: N reader threads parse and resolve the
//! FIB blocks in parallel while the main thread buffers them through the
//! bulk-load fast path, and consistent detection runs once over the
//! sealed snapshot. `--ingest-threads 0` forces the legacy sequential
//! path, which re-verifies after every device.
//!
//! `dataset generate` writes a fat-tree StdFIB dataset to a directory in
//! the on-disk layout of `flash_workloads::dataset` (HeTu-style:
//! `topology.json`, `packet_space.json`, `edge_devices`,
//! `data/routes/<device>`), generating device by device. `dataset load`
//! streams such a directory through the verifier.
//!
//! `journal` pretty-prints a durable epoch journal (a `worker-N.fjl`
//! file written by `RecoveryOptions::journal_dir`): the checkpoint it
//! leads with, the jobs journaled since, and whether the tail is clean
//! or torn by a crash. Exit code 1 on a torn tail.

use flash_core::adapter::{
    format_prefix, parse_network_header, stream_network_fibs, stream_network_fibs_parallel,
};
use flash_core::{
    EpochJournal, JournalEntry, JournalTail, Property, PropertyReport, SubspaceVerifier,
    SubspaceVerifierConfig,
};
use flash_imt::SubspaceSpec;
use flash_netmodel::{ActionTable, HeaderLayout, Topology};
use flash_workloads::dataset;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str =
    "usage: flash-cli check <network-file> [--classes] [--quiet] [--ingest-threads N]\n       \
     flash-cli journal <journal-file>\n       \
     flash-cli dataset generate <dir> [--k N] [--hostbits N] [--prefixes N] [--quiet]\n       \
     flash-cli dataset load <dir> [--classes] [--quiet] [--ingest-threads N]";

/// Resolves the ingest-thread count: explicit flag, then the
/// `FLASH_INGEST_THREADS` environment variable, then the machine's
/// available parallelism (the shard-pool default). `0` selects the
/// legacy sequential per-device path.
fn resolve_ingest_threads(flag: Option<usize>) -> usize {
    flag.or_else(|| {
        std::env::var("FLASH_INGEST_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
    })
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        Some("check") => {}
        Some("journal") => {
            let Some(path) = it.next() else {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            };
            return print_journal(path);
        }
        Some("dataset") => return cmd_dataset(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    let mut files = Vec::new();
    let mut show_classes = false;
    let mut quiet = false;
    let mut ingest_threads: Option<usize> = None;
    let mut expect_threads = false;
    for a in it {
        if expect_threads {
            expect_threads = false;
            let Ok(v) = a.parse::<usize>() else {
                eprintln!("bad value for --ingest-threads: {a:?}");
                return ExitCode::from(2);
            };
            ingest_threads = Some(v);
            continue;
        }
        match a.as_str() {
            "--classes" => show_classes = true,
            "--quiet" => quiet = true,
            "--ingest-threads" => expect_threads = true,
            f => files.push(f.to_string()),
        }
    }
    let Some(path) = files.first() else {
        if expect_threads {
            eprintln!("--ingest-threads needs a value");
        }
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if expect_threads {
        eprintln!("--ingest-threads needs a value");
        return ExitCode::from(2);
    }
    cmd_check(path, show_classes, quiet, resolve_ingest_threads(ingest_threads))
}

fn open_reader(path: &str) -> Result<std::io::BufReader<std::fs::File>, ExitCode> {
    match std::fs::File::open(path) {
        Ok(f) => Ok(std::io::BufReader::new(f)),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_check(path: &str, show_classes: bool, quiet: bool, ingest_threads: usize) -> ExitCode {
    // Pass 1: header only — topology, actions, requirements, rule counts.
    let reader = match open_reader(path) {
        Ok(r) => r,
        Err(c) => return c,
    };
    let header = match parse_network_header(reader) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        println!(
            "loaded {}: {} devices, {} links, {} FIBs ({} rules), {} properties",
            path,
            header.topo.device_count(),
            header.topo.link_count(),
            header.fib_devices.len(),
            header.total_rules,
            header.properties.len()
        );
    }

    let mut verifier = SubspaceVerifier::new(SubspaceVerifierConfig {
        topo: header.topo.clone(),
        actions: header.actions.clone(),
        layout: header.layout.clone(),
        subspace: SubspaceSpec::whole(),
        bst: usize::MAX,
        properties: header.properties.clone(),
        tuning: flash_imt::ImtTuning::default(),
        gc_node_threshold: flash_bdd::PredEngine::gc_threshold_from_env(
            flash_bdd::DEFAULT_GC_NODE_THRESHOLD,
        ),
        cache: flash_bdd::CacheConfig::from_env(),
    });

    // Pass 2: stream each device's FIB straight into the verifier —
    // pipelined through the bulk-load snapshot path, or sequentially
    // with per-device detection when --ingest-threads 0.
    let mut violated = false;
    let t0 = std::time::Instant::now();
    let topo = header.topo.clone();
    let streamed = if ingest_threads >= 1 {
        stream_network_fibs_parallel(
            || std::fs::File::open(path).map(std::io::BufReader::new),
            &header,
            ingest_threads,
            |_, rules| {
                rules
                    .into_iter()
                    .map(flash_netmodel::RuleUpdate::insert)
                    .collect::<Vec<_>>()
            },
            |dev, updates| {
                verifier.ingest_bulk(dev, updates);
                Ok(())
            },
        )
        .map(|_| ())
        .map(|()| {
            let mut synced = header.fib_devices.clone();
            synced.sort_unstable();
            synced.dedup();
            for report in verifier.seal_bulk(&synced) {
                print_report(&report, &topo, quiet, &mut violated);
            }
        })
    } else {
        let reader = match open_reader(path) {
            Ok(r) => r,
            Err(c) => return c,
        };
        stream_network_fibs(reader, |dev, rules| {
            let updates = rules
                .into_iter()
                .map(flash_netmodel::RuleUpdate::insert)
                .collect();
            for report in verifier.ingest_synchronized(dev, updates) {
                print_report(&report, &topo, quiet, &mut violated);
            }
            Ok(())
        })
        .map(|_| ())
    };
    if let Err(e) = streamed {
        eprintln!("{path}: {e}");
        return ExitCode::from(2);
    }
    let elapsed = t0.elapsed();

    print_model_stats(&verifier, quiet, elapsed);
    if show_classes {
        print_classes(&mut verifier, &header.topo, &header.actions);
    }

    if violated {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(
    report: &PropertyReport,
    topo: &Topology,
    quiet: bool,
    violated: &mut bool,
) {
    match report {
        PropertyReport::LoopFound { cycle } => {
            *violated = true;
            let names: Vec<&str> = cycle.iter().map(|d| topo.name(*d)).collect();
            println!("VIOLATION loop: {}", names.join(" -> "));
        }
        PropertyReport::Unsatisfied { requirement } => {
            *violated = true;
            println!("VIOLATION requirement {requirement:?} cannot be satisfied");
        }
        PropertyReport::Satisfied { requirement } => {
            if !quiet {
                println!("ok: requirement {requirement:?} satisfied");
            }
        }
        PropertyReport::LoopFreedomHolds => {
            if !quiet {
                println!("ok: loop freedom holds");
            }
        }
    }
}

fn print_model_stats(verifier: &SubspaceVerifier, quiet: bool, elapsed: std::time::Duration) {
    if quiet {
        return;
    }
    let mgr = verifier.manager();
    let stats = mgr.stats();
    println!(
        "model: {} equivalence classes from {} updates ({} atomic -> {} compact overwrites), \
         {} predicate ops, {:.1?}",
        mgr.model().len(),
        stats.updates_accepted,
        stats.atomic_overwrites,
        stats.compact_overwrites,
        mgr.engine().op_count(),
        elapsed
    );
    println!("predicates: {}", stats.engine.summary());
    let mt = flash_netmodel::MatchTable::global().stats();
    println!(
        "matches: {} distinct interned ({} hits, ~{} KiB)",
        mt.distinct,
        mt.hits,
        mt.approx_bytes / 1024
    );
}

fn cmd_dataset(args: &[String]) -> ExitCode {
    let mut it = args.iter();
    let sub = it.next().map(|s| s.as_str());
    let mut dirs = Vec::new();
    let mut quiet = false;
    let mut show_classes = false;
    let mut k = 8u32;
    let mut host_bits = 8u32;
    let mut prefixes = 4u32;
    let mut ingest_threads: Option<usize> = None;
    let mut expect_num: Option<&str> = None;
    for a in it {
        if let Some(flag) = expect_num.take() {
            let Ok(v) = a.parse::<u32>() else {
                eprintln!("bad value for {flag}: {a:?}");
                return ExitCode::from(2);
            };
            match flag {
                "--k" => k = v,
                "--hostbits" => host_bits = v,
                "--prefixes" => prefixes = v,
                "--ingest-threads" => ingest_threads = Some(v as usize),
                _ => unreachable!(),
            }
            continue;
        }
        match a.as_str() {
            "--quiet" => quiet = true,
            "--classes" => show_classes = true,
            "--k" | "--hostbits" | "--prefixes" | "--ingest-threads" => {
                expect_num = Some(a.as_str())
            }
            d => dirs.push(d.to_string()),
        }
    }
    if expect_num.is_some() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let Some(dir) = dirs.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match sub {
        Some("generate") => {
            if k < 2 || !k.is_multiple_of(2) {
                eprintln!("--k must be even and >= 2");
                return ExitCode::from(2);
            }
            match dataset::generate_fat_tree_dataset(Path::new(dir), k, host_bits, prefixes) {
                Ok(s) => {
                    if !quiet {
                        println!(
                            "generated {dir}: k={k} fat tree, {} devices, {} links, \
                             {} edge devices, {} rules",
                            s.devices, s.links, s.edge_devices, s.rules
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{dir}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("load") => {
            cmd_dataset_load(dir, show_classes, quiet, resolve_ingest_threads(ingest_threads))
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_dataset_load(
    dir: &str,
    show_classes: bool,
    quiet: bool,
    ingest_threads: usize,
) -> ExitCode {
    let header = match dataset::load_header(Path::new(dir)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    // Pass 1 over the route files: build the complete action table.
    let mut actions = ActionTable::new();
    let total = match header.stream_routes(&mut actions, |_, _| Ok(())) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        println!(
            "loaded {dir}: {} devices, {} links, {} route files, {} rules, {} edge devices",
            header.topo.device_count(),
            header.topo.link_count(),
            header.route_devices.len(),
            total,
            header.edge_devices.len()
        );
    }
    let actions = Arc::new(actions);
    let layout: HeaderLayout = header.layout.clone();
    let mut verifier = SubspaceVerifier::new(SubspaceVerifierConfig {
        topo: header.topo.clone(),
        actions: actions.clone(),
        layout,
        subspace: SubspaceSpec::whole(),
        bst: usize::MAX,
        properties: vec![Property::LoopFreedom],
        tuning: flash_imt::ImtTuning::default(),
        gc_node_threshold: flash_bdd::PredEngine::gc_threshold_from_env(
            flash_bdd::DEFAULT_GC_NODE_THRESHOLD,
        ),
        cache: flash_bdd::CacheConfig::from_env(),
    });
    // Pass 2: stream rules into the verifier (ids agree with pass 1) —
    // parallel readers resolving actions read-only, feeding the
    // bulk-load snapshot path; or the legacy per-device sequential path
    // when --ingest-threads 0.
    let mut violated = false;
    let topo = header.topo.clone();
    let t0 = std::time::Instant::now();
    let streamed = if ingest_threads >= 1 {
        header
            .stream_routes_parallel(
                &actions,
                ingest_threads,
                |_, rules| {
                    rules
                        .into_iter()
                        .map(flash_netmodel::RuleUpdate::insert)
                        .collect::<Vec<_>>()
                },
                |dev, updates| {
                    verifier.ingest_bulk(dev, updates);
                    Ok(())
                },
            )
            .map(|_| {
                for report in verifier.seal_bulk(&header.route_devices) {
                    print_report(&report, &topo, quiet, &mut violated);
                }
            })
    } else {
        header
            .stream_routes_resolved(&actions, |dev, rules| {
                let updates = rules
                    .into_iter()
                    .map(flash_netmodel::RuleUpdate::insert)
                    .collect();
                for report in verifier.ingest_synchronized(dev, updates) {
                    print_report(&report, &topo, quiet, &mut violated);
                }
                Ok(())
            })
            .map(|_| ())
    };
    if let Err(e) = streamed {
        eprintln!("{dir}: {e}");
        return ExitCode::from(2);
    }
    let elapsed = t0.elapsed();
    print_model_stats(&verifier, quiet, elapsed);
    if show_classes {
        print_classes(&mut verifier, &header.topo, &actions);
    }
    if violated {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Pretty-prints a durable epoch journal: checkpoint summary, journaled
/// jobs, tail status.
fn print_journal(path: &str) -> ExitCode {
    let (entries, tail) = match EpochJournal::read_entries(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!("{path}: {} entries", entries.len());
    for (i, e) in entries.iter().enumerate() {
        match e {
            JournalEntry::Checkpoint(cp) => {
                let last = if cp.last_seq == u64::MAX {
                    "-".to_string()
                } else {
                    cp.last_seq.to_string()
                };
                println!(
                    "  [{i}] checkpoint worker={} last_seq={last} shards={} delivered={}",
                    cp.worker,
                    cp.shards.len(),
                    cp.reported.len()
                );
                for s in &cp.shards {
                    println!(
                        "        shard {} built={} fib_rules={} synced={} classes={} \
                         updates_accepted={}",
                        s.shard,
                        s.built,
                        s.fibs.iter().map(|(_, rs)| rs.len()).sum::<usize>(),
                        s.synced.len(),
                        s.class_fingerprints.len(),
                        s.stats.updates_accepted
                    );
                }
            }
            JournalEntry::Block(b) => {
                println!(
                    "  [{i}] block seq={} updates={} shards_touched={}",
                    b.seq,
                    b.updates.len(),
                    b.routed.iter().filter(|r| !r.is_empty()).count()
                );
            }
            JournalEntry::Collect => println!("  [{i}] collect"),
            JournalEntry::Ingest(b) => {
                println!(
                    "  [{i}] ingest updates={} shards_touched={}",
                    b.updates.len(),
                    b.routed.iter().filter(|r| !r.is_empty()).count()
                );
            }
            JournalEntry::Seal { seq, devices } => {
                println!("  [{i}] seal seq={seq} devices={}", devices.len());
            }
        }
    }
    match tail {
        JournalTail::Clean => {
            println!("tail: clean");
            ExitCode::SUCCESS
        }
        JournalTail::Torn(msg) => {
            println!("tail: torn ({msg}) — entries above were recovered");
            ExitCode::from(1)
        }
    }
}

/// Prints every equivalence class as a witness prefix plus its action
/// vector.
fn print_classes(
    verifier: &mut SubspaceVerifier,
    topo: &Arc<Topology>,
    actions: &Arc<ActionTable>,
) {
    let topo = topo.clone();
    let actions = actions.clone();
    let mgr = verifier.manager_mut();
    let (engine, pat, model) = mgr.parts_mut();
    println!("equivalence classes:");
    for (i, e) in model.entries().iter().enumerate() {
        let frac = engine.sat_fraction(&e.pred);
        let witness = engine
            .any_sat(&e.pred)
            .map(|bits| {
                let v: u64 = bits.iter().fold(0, |acc, &b| (acc << 1) | b as u64);
                format_prefix(v, 32)
            })
            .unwrap_or_else(|| "-".into());
        let vector: Vec<String> = pat
            .entries(e.vector)
            .iter()
            .map(|(d, a)| {
                let hops: Vec<&str> = actions
                    .next_hops(*a)
                    .iter()
                    .map(|h| topo.name(*h))
                    .collect();
                format!(
                    "{}→{}",
                    topo.name(*d),
                    if hops.is_empty() {
                        "drop".to_string()
                    } else {
                        hops.join("|")
                    }
                )
            })
            .collect();
        println!(
            "  [{}] {:>6.2}% of space, witness {} : {}",
            i,
            frac * 100.0,
            witness,
            if vector.is_empty() {
                "all-default".to_string()
            } else {
                vector.join(", ")
            }
        );
    }
}
