//! `flash-cli` — verify a network described in the text adapter format.
//!
//! ```text
//! flash-cli check <network-file> [--classes] [--quiet] [--ingest-threads N]
//! flash-cli journal <journal-file>
//! flash-cli dataset generate <dir> [--k N] [--hostbits N] [--prefixes N] [--quiet]
//! flash-cli dataset load <dir> [--classes] [--quiet] [--ingest-threads N]
//! ```
//!
//! `check` verifies a text network file (see `flash_core::adapter` for
//! the format) with a two-pass streaming ingest: pass one parses the
//! topology, actions and requirements (dropping rule bodies), pass two
//! streams each device's FIB into Fast IMT as its block completes — the
//! whole rule set is never resident. Verdicts plus model statistics are
//! printed. Exit code 1 when any property is violated.
//!
//! With `--ingest-threads N >= 1` (the default: the machine's available
//! parallelism, or the `FLASH_INGEST_THREADS` env var), pass two runs
//! the pipelined snapshot path: N reader threads parse and resolve the
//! FIB blocks in parallel while the main thread buffers them through the
//! bulk-load fast path, and consistent detection runs once over the
//! sealed snapshot. `--ingest-threads 0` forces the legacy sequential
//! path, which re-verifies after every device.
//!
//! `dataset generate` writes a fat-tree StdFIB dataset to a directory in
//! the on-disk layout of `flash_workloads::dataset` (HeTu-style:
//! `topology.json`, `packet_space.json`, `edge_devices`,
//! `data/routes/<device>`), generating device by device. `dataset load`
//! streams such a directory through the verifier.
//!
//! `journal` pretty-prints a durable epoch journal (a `worker-N.fjl`
//! file written by `RecoveryOptions::journal_dir`): the checkpoint it
//! leads with, the jobs journaled since, and whether the tail is clean
//! or torn by a crash. Exit code 1 on a torn tail.
//!
//! `query` loads a dataset directory into a sharded pool with the
//! epoch-snapshot query tier attached and answers one reachability (or,
//! with `--via`, waypoint) question against the sealed snapshots. Exit
//! code 0 when every intersecting class satisfies the property, 1
//! otherwise.
//!
//! `--shard-mode thread|process` selects worker isolation for `check`
//! and `dataset load` (default `thread`). Process mode is incompatible
//! with the pipelined bulk-ingest path (`--ingest-threads >= 1`) and
//! with `query` (snapshots share node arenas); both combinations are
//! rejected at argument parsing, before any file is touched.

use flash_core::adapter::{
    format_prefix, parse_network_header, stream_network_fibs, stream_network_fibs_parallel,
};
use flash_core::{
    AnswerKind, Backpressure, EpochJournal, EpochReport, JournalEntry, JournalTail, Property,
    PropertyReport, Query, QueryHub, QueryService, QueryServiceConfig, ShardMode, ShardPool,
    ShardPoolConfig, SubspaceVerifier, SubspaceVerifierConfig,
};
use flash_imt::{SubspacePlan, SubspaceSpec};
use flash_netmodel::{ActionTable, DeviceId, FieldId, HeaderLayout, RuleUpdate, Topology};
use flash_workloads::dataset;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str =
    "usage: flash-cli check <network-file> [--classes] [--quiet] [--ingest-threads N] \
     [--shard-mode thread|process]\n       \
     flash-cli journal <journal-file>\n       \
     flash-cli dataset generate <dir> [--k N] [--hostbits N] [--prefixes N] [--quiet]\n       \
     flash-cli dataset load <dir> [--classes] [--quiet] [--ingest-threads N] \
     [--shard-mode thread|process]\n       \
     flash-cli query <dataset-dir> --src <device> --dst <device> [--via <device>] \
     [--prefix A.B.C.D/L] [--shard-bits N] [--readers N] [--quiet]";

/// Parses a `--shard-mode` value.
fn parse_shard_mode(v: &str) -> Option<ShardMode> {
    match v {
        "thread" => Some(ShardMode::Thread),
        "process" => Some(ShardMode::Process),
        _ => None,
    }
}

/// Fail-fast validation of the `--shard-mode` / `--ingest-threads`
/// combination, run at argument parsing so an incompatible pair is
/// rejected before any file is opened or any rule is loaded (previously
/// this surfaced only mid-load, as the pool's bulk-job config error).
fn validate_shard_mode(mode: ShardMode, ingest_threads: usize) -> Result<(), String> {
    if mode == ShardMode::Process && ingest_threads >= 1 {
        return Err(
            "--shard-mode process cannot run the pipelined bulk-ingest path \
             (bulk ingestion requires thread mode): pass --ingest-threads 0 for \
             the sequential path, or drop --shard-mode process"
                .into(),
        );
    }
    Ok(())
}

/// Parses `A.B.C.D/L` (dotted quad) or `V/L` (raw integer) into a
/// field-width-aligned `(value, len)` prefix.
fn parse_prefix(s: &str) -> Option<(u64, u32)> {
    let (v, l) = s.split_once('/')?;
    let len: u32 = l.parse().ok()?;
    let value = if v.contains('.') {
        let mut acc = 0u64;
        let mut parts = 0u32;
        for p in v.split('.') {
            let octet: u64 = p.parse().ok()?;
            if octet > 255 {
                return None;
            }
            acc = (acc << 8) | octet;
            parts += 1;
        }
        if parts != 4 {
            return None;
        }
        acc
    } else {
        v.parse().ok()?
    };
    Some((value, len))
}

/// Resolves the ingest-thread count: explicit flag, then the
/// `FLASH_INGEST_THREADS` environment variable, then the machine's
/// available parallelism (the shard-pool default). `0` selects the
/// legacy sequential per-device path.
fn resolve_ingest_threads(flag: Option<usize>) -> usize {
    flag.or_else(|| {
        std::env::var("FLASH_INGEST_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
    })
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        Some("check") => {}
        Some("journal") => {
            let Some(path) = it.next() else {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            };
            return print_journal(path);
        }
        Some("dataset") => return cmd_dataset(&args[1..]),
        Some("query") => return cmd_query(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    let mut files = Vec::new();
    let mut show_classes = false;
    let mut quiet = false;
    let mut ingest_threads: Option<usize> = None;
    let mut shard_mode = ShardMode::Thread;
    let mut expect: Option<&str> = None;
    for a in it {
        if let Some(flag) = expect.take() {
            match flag {
                "--ingest-threads" => {
                    let Ok(v) = a.parse::<usize>() else {
                        eprintln!("bad value for --ingest-threads: {a:?}");
                        return ExitCode::from(2);
                    };
                    ingest_threads = Some(v);
                }
                "--shard-mode" => {
                    let Some(m) = parse_shard_mode(a) else {
                        eprintln!("bad value for --shard-mode: {a:?} (thread or process)");
                        return ExitCode::from(2);
                    };
                    shard_mode = m;
                }
                _ => unreachable!(),
            }
            continue;
        }
        match a.as_str() {
            "--classes" => show_classes = true,
            "--quiet" => quiet = true,
            "--ingest-threads" | "--shard-mode" => expect = Some(a.as_str()),
            f => files.push(f.to_string()),
        }
    }
    if let Some(flag) = expect {
        eprintln!("{flag} needs a value");
        return ExitCode::from(2);
    }
    let Some(path) = files.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let threads = resolve_ingest_threads(ingest_threads);
    // Satellite fix: reject process mode + pipelined bulk ingest here,
    // with both flags in hand, instead of failing mid-load. An explicit
    // --ingest-threads 0 opts into the sequential path; with no explicit
    // flag, process mode implies it.
    let threads = if shard_mode == ShardMode::Process && ingest_threads.is_none() {
        0
    } else {
        threads
    };
    if let Err(msg) = validate_shard_mode(shard_mode, threads) {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    cmd_check(path, show_classes, quiet, threads, shard_mode)
}

fn open_reader(path: &str) -> Result<std::io::BufReader<std::fs::File>, ExitCode> {
    match std::fs::File::open(path) {
        Ok(f) => Ok(std::io::BufReader::new(f)),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_check(
    path: &str,
    show_classes: bool,
    quiet: bool,
    ingest_threads: usize,
    shard_mode: ShardMode,
) -> ExitCode {
    // Pass 1: header only — topology, actions, requirements, rule counts.
    let reader = match open_reader(path) {
        Ok(r) => r,
        Err(c) => return c,
    };
    let header = match parse_network_header(reader) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        println!(
            "loaded {}: {} devices, {} links, {} FIBs ({} rules), {} properties",
            path,
            header.topo.device_count(),
            header.topo.link_count(),
            header.fib_devices.len(),
            header.total_rules,
            header.properties.len()
        );
    }

    if shard_mode == ShardMode::Process {
        // Process-isolated pool, sequential per-device blocks (the
        // bulk path was rejected at argument parsing).
        let reader = match open_reader(path) {
            Ok(r) => r,
            Err(c) => return c,
        };
        let run = run_pool_sequential(
            &header.topo,
            &header.actions,
            header.layout.clone(),
            header.properties.clone(),
            quiet,
            |sink| stream_network_fibs(reader, |dev, rules| {
                sink(dev, rules.into_iter().map(RuleUpdate::insert).collect());
                Ok(())
            })
            .map(|_| ())
            .map_err(|e| e.to_string()),
        );
        return match run {
            Ok(violated) => {
                if violated {
                    ExitCode::from(1)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::from(2)
            }
        };
    }

    let mut verifier = SubspaceVerifier::new(SubspaceVerifierConfig {
        topo: header.topo.clone(),
        actions: header.actions.clone(),
        layout: header.layout.clone(),
        subspace: SubspaceSpec::whole(),
        bst: usize::MAX,
        properties: header.properties.clone(),
        tuning: flash_imt::ImtTuning::default(),
        gc_node_threshold: flash_bdd::PredEngine::gc_threshold_from_env(
            flash_bdd::DEFAULT_GC_NODE_THRESHOLD,
        ),
        cache: flash_bdd::CacheConfig::from_env(),
    });

    // Pass 2: stream each device's FIB straight into the verifier —
    // pipelined through the bulk-load snapshot path, or sequentially
    // with per-device detection when --ingest-threads 0.
    let mut violated = false;
    let t0 = std::time::Instant::now();
    let topo = header.topo.clone();
    let streamed = if ingest_threads >= 1 {
        stream_network_fibs_parallel(
            || std::fs::File::open(path).map(std::io::BufReader::new),
            &header,
            ingest_threads,
            |_, rules| {
                rules
                    .into_iter()
                    .map(flash_netmodel::RuleUpdate::insert)
                    .collect::<Vec<_>>()
            },
            |dev, updates| {
                verifier.ingest_bulk(dev, updates);
                Ok(())
            },
        )
        .map(|_| ())
        .map(|()| {
            let mut synced = header.fib_devices.clone();
            synced.sort_unstable();
            synced.dedup();
            for report in verifier.seal_bulk(&synced) {
                print_report(&report, &topo, quiet, &mut violated);
            }
        })
    } else {
        let reader = match open_reader(path) {
            Ok(r) => r,
            Err(c) => return c,
        };
        stream_network_fibs(reader, |dev, rules| {
            let updates = rules
                .into_iter()
                .map(flash_netmodel::RuleUpdate::insert)
                .collect();
            for report in verifier.ingest_synchronized(dev, updates) {
                print_report(&report, &topo, quiet, &mut violated);
            }
            Ok(())
        })
        .map(|_| ())
    };
    if let Err(e) = streamed {
        eprintln!("{path}: {e}");
        return ExitCode::from(2);
    }
    let elapsed = t0.elapsed();

    print_model_stats(&verifier, quiet, elapsed);
    if show_classes {
        print_classes(&mut verifier, &header.topo, &header.actions);
    }

    if violated {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(
    report: &PropertyReport,
    topo: &Topology,
    quiet: bool,
    violated: &mut bool,
) {
    match report {
        PropertyReport::LoopFound { cycle } => {
            *violated = true;
            let names: Vec<&str> = cycle.iter().map(|d| topo.name(*d)).collect();
            println!("VIOLATION loop: {}", names.join(" -> "));
        }
        PropertyReport::Unsatisfied { requirement } => {
            *violated = true;
            println!("VIOLATION requirement {requirement:?} cannot be satisfied");
        }
        PropertyReport::Satisfied { requirement } => {
            if !quiet {
                println!("ok: requirement {requirement:?} satisfied");
            }
        }
        PropertyReport::LoopFreedomHolds => {
            if !quiet {
                println!("ok: loop freedom holds");
            }
        }
    }
}

fn print_epoch(ep: &EpochReport, topo: &Topology, quiet: bool, violated: &mut bool) {
    for s in &ep.shards {
        for r in &s.reports {
            print_report(r, topo, quiet, violated);
        }
    }
    for (_, r) in &ep.late {
        print_report(r, topo, quiet, violated);
    }
}

/// Runs a sequential per-device verification through a process-isolated
/// [`ShardPool`] (one whole-space shard): each device's FIB is one
/// submitted block, verdicts print as epochs complete. Returns whether
/// any property was violated.
fn run_pool_sequential(
    topo: &Arc<Topology>,
    actions: &Arc<ActionTable>,
    layout: HeaderLayout,
    properties: Vec<Property>,
    quiet: bool,
    stream: impl FnOnce(&mut dyn FnMut(DeviceId, Vec<RuleUpdate>)) -> Result<(), String>,
) -> Result<bool, String> {
    let t0 = std::time::Instant::now();
    let mut cfg = ShardPoolConfig::model_only(layout, SubspacePlan::single(), usize::MAX, 1);
    cfg.topo = topo.clone();
    cfg.actions = actions.clone();
    cfg.properties = properties;
    cfg.recovery.mode = ShardMode::Process;
    let mut pool = ShardPool::spawn(cfg).map_err(|e| e.to_string())?;
    let mut violated = false;
    let mut classes = 0usize;
    {
        let mut sink = |dev: DeviceId, updates: Vec<RuleUpdate>| {
            pool.submit(updates.into_iter().map(|u| (dev, u)).collect());
            while let Some(ep) = pool.try_recv_epoch() {
                classes = ep.total_classes();
                print_epoch(&ep, topo, quiet, &mut violated);
            }
        };
        stream(&mut sink)?;
    }
    let outcome = pool.drain(Duration::from_secs(600));
    for ep in &outcome.epochs {
        classes = ep.total_classes();
        print_epoch(ep, topo, quiet, &mut violated);
    }
    for (_, r) in &outcome.late {
        print_report(r, topo, quiet, &mut violated);
    }
    if !outcome.abandoned.is_empty() {
        return Err(format!(
            "workers {:?} missed the drain deadline",
            outcome.abandoned
        ));
    }
    if !quiet {
        println!(
            "model: {classes} equivalence classes (process-isolated shard pool), {:.1?}",
            t0.elapsed()
        );
    }
    Ok(violated)
}

fn print_model_stats(verifier: &SubspaceVerifier, quiet: bool, elapsed: std::time::Duration) {
    if quiet {
        return;
    }
    let mgr = verifier.manager();
    let stats = mgr.stats();
    println!(
        "model: {} equivalence classes from {} updates ({} atomic -> {} compact overwrites), \
         {} predicate ops, {:.1?}",
        mgr.model().len(),
        stats.updates_accepted,
        stats.atomic_overwrites,
        stats.compact_overwrites,
        mgr.engine().op_count(),
        elapsed
    );
    println!("predicates: {}", stats.engine.summary());
    let mt = flash_netmodel::MatchTable::global().stats();
    println!(
        "matches: {} distinct interned ({} hits, ~{} KiB)",
        mt.distinct,
        mt.hits,
        mt.approx_bytes / 1024
    );
}

fn cmd_dataset(args: &[String]) -> ExitCode {
    let mut it = args.iter();
    let sub = it.next().map(|s| s.as_str());
    let mut dirs = Vec::new();
    let mut quiet = false;
    let mut show_classes = false;
    let mut k = 8u32;
    let mut host_bits = 8u32;
    let mut prefixes = 4u32;
    let mut ingest_threads: Option<usize> = None;
    let mut shard_mode = ShardMode::Thread;
    let mut expect_num: Option<&str> = None;
    for a in it {
        if let Some(flag) = expect_num.take() {
            if flag == "--shard-mode" {
                let Some(m) = parse_shard_mode(a) else {
                    eprintln!("bad value for --shard-mode: {a:?} (thread or process)");
                    return ExitCode::from(2);
                };
                shard_mode = m;
                continue;
            }
            let Ok(v) = a.parse::<u32>() else {
                eprintln!("bad value for {flag}: {a:?}");
                return ExitCode::from(2);
            };
            match flag {
                "--k" => k = v,
                "--hostbits" => host_bits = v,
                "--prefixes" => prefixes = v,
                "--ingest-threads" => ingest_threads = Some(v as usize),
                _ => unreachable!(),
            }
            continue;
        }
        match a.as_str() {
            "--quiet" => quiet = true,
            "--classes" => show_classes = true,
            "--k" | "--hostbits" | "--prefixes" | "--ingest-threads" | "--shard-mode" => {
                expect_num = Some(a.as_str())
            }
            d => dirs.push(d.to_string()),
        }
    }
    if expect_num.is_some() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let Some(dir) = dirs.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match sub {
        Some("generate") => {
            if k < 2 || !k.is_multiple_of(2) {
                eprintln!("--k must be even and >= 2");
                return ExitCode::from(2);
            }
            match dataset::generate_fat_tree_dataset(Path::new(dir), k, host_bits, prefixes) {
                Ok(s) => {
                    if !quiet {
                        println!(
                            "generated {dir}: k={k} fat tree, {} devices, {} links, \
                             {} edge devices, {} rules",
                            s.devices, s.links, s.edge_devices, s.rules
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{dir}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("load") => {
            let threads = resolve_ingest_threads(ingest_threads);
            // Same fail-fast as `check`: process mode defaults to the
            // sequential path, but an explicit pipelined request is an
            // error, reported before the dataset is opened.
            let threads = if shard_mode == ShardMode::Process && ingest_threads.is_none() {
                0
            } else {
                threads
            };
            if let Err(msg) = validate_shard_mode(shard_mode, threads) {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
            cmd_dataset_load(dir, show_classes, quiet, threads, shard_mode)
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_dataset_load(
    dir: &str,
    show_classes: bool,
    quiet: bool,
    ingest_threads: usize,
    shard_mode: ShardMode,
) -> ExitCode {
    let header = match dataset::load_header(Path::new(dir)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    // Pass 1 over the route files: build the complete action table.
    let mut actions = ActionTable::new();
    let total = match header.stream_routes(&mut actions, |_, _| Ok(())) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        println!(
            "loaded {dir}: {} devices, {} links, {} route files, {} rules, {} edge devices",
            header.topo.device_count(),
            header.topo.link_count(),
            header.route_devices.len(),
            total,
            header.edge_devices.len()
        );
    }
    let actions = Arc::new(actions);
    let layout: HeaderLayout = header.layout.clone();
    if shard_mode == ShardMode::Process {
        let run = run_pool_sequential(
            &header.topo,
            &actions,
            layout,
            vec![Property::LoopFreedom],
            quiet,
            |sink| {
                header
                    .stream_routes_resolved(&actions, |dev, rules| {
                        sink(dev, rules.into_iter().map(RuleUpdate::insert).collect());
                        Ok(())
                    })
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        );
        return match run {
            Ok(violated) => {
                if violated {
                    ExitCode::from(1)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("{dir}: {e}");
                ExitCode::from(2)
            }
        };
    }
    let mut verifier = SubspaceVerifier::new(SubspaceVerifierConfig {
        topo: header.topo.clone(),
        actions: actions.clone(),
        layout,
        subspace: SubspaceSpec::whole(),
        bst: usize::MAX,
        properties: vec![Property::LoopFreedom],
        tuning: flash_imt::ImtTuning::default(),
        gc_node_threshold: flash_bdd::PredEngine::gc_threshold_from_env(
            flash_bdd::DEFAULT_GC_NODE_THRESHOLD,
        ),
        cache: flash_bdd::CacheConfig::from_env(),
    });
    // Pass 2: stream rules into the verifier (ids agree with pass 1) —
    // parallel readers resolving actions read-only, feeding the
    // bulk-load snapshot path; or the legacy per-device sequential path
    // when --ingest-threads 0.
    let mut violated = false;
    let topo = header.topo.clone();
    let t0 = std::time::Instant::now();
    let streamed = if ingest_threads >= 1 {
        header
            .stream_routes_parallel(
                &actions,
                ingest_threads,
                |_, rules| {
                    rules
                        .into_iter()
                        .map(flash_netmodel::RuleUpdate::insert)
                        .collect::<Vec<_>>()
                },
                |dev, updates| {
                    verifier.ingest_bulk(dev, updates);
                    Ok(())
                },
            )
            .map(|_| {
                for report in verifier.seal_bulk(&header.route_devices) {
                    print_report(&report, &topo, quiet, &mut violated);
                }
            })
    } else {
        header
            .stream_routes_resolved(&actions, |dev, rules| {
                let updates = rules
                    .into_iter()
                    .map(flash_netmodel::RuleUpdate::insert)
                    .collect();
                for report in verifier.ingest_synchronized(dev, updates) {
                    print_report(&report, &topo, quiet, &mut violated);
                }
                Ok(())
            })
            .map(|_| ())
    };
    if let Err(e) = streamed {
        eprintln!("{dir}: {e}");
        return ExitCode::from(2);
    }
    let elapsed = t0.elapsed();
    print_model_stats(&verifier, quiet, elapsed);
    if show_classes {
        print_classes(&mut verifier, &header.topo, &actions);
    }
    if violated {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `flash-cli query`: load a dataset into a sharded pool with the
/// epoch-snapshot query tier attached, seal it, and answer one
/// reachability or waypoint question against the sealed snapshots.
fn cmd_query(args: &[String]) -> ExitCode {
    let mut dirs = Vec::new();
    let mut quiet = false;
    let mut src: Option<String> = None;
    let mut dst: Option<String> = None;
    let mut via: Option<String> = None;
    let mut prefix: Option<(u64, u32)> = None;
    let mut shard_bits = 2u32;
    let mut readers = 4usize;
    let mut expect: Option<&str> = None;
    for a in args {
        if let Some(flag) = expect.take() {
            match flag {
                "--src" => src = Some(a.clone()),
                "--dst" => dst = Some(a.clone()),
                "--via" => via = Some(a.clone()),
                "--prefix" => {
                    let Some(p) = parse_prefix(a) else {
                        eprintln!("bad value for --prefix: {a:?} (A.B.C.D/L or V/L)");
                        return ExitCode::from(2);
                    };
                    prefix = Some(p);
                }
                "--shard-bits" => {
                    let Ok(v) = a.parse::<u32>() else {
                        eprintln!("bad value for --shard-bits: {a:?}");
                        return ExitCode::from(2);
                    };
                    shard_bits = v;
                }
                "--readers" => {
                    let Ok(v) = a.parse::<usize>() else {
                        eprintln!("bad value for --readers: {a:?}");
                        return ExitCode::from(2);
                    };
                    readers = v.max(1);
                }
                "--shard-mode" => match parse_shard_mode(a) {
                    Some(ShardMode::Thread) => {}
                    Some(ShardMode::Process) => {
                        // Fail fast, before the dataset is opened: the
                        // query tier shares snapshot node arenas with
                        // the shard workers.
                        eprintln!(
                            "flash-cli query requires --shard-mode thread: the snapshot \
                             query tier shares node arenas with the shard workers"
                        );
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("bad value for --shard-mode: {a:?} (thread or process)");
                        return ExitCode::from(2);
                    }
                },
                _ => unreachable!(),
            }
            continue;
        }
        match a.as_str() {
            "--quiet" => quiet = true,
            "--src" | "--dst" | "--via" | "--prefix" | "--shard-bits" | "--readers"
            | "--shard-mode" => expect = Some(a.as_str()),
            d => dirs.push(d.to_string()),
        }
    }
    if let Some(flag) = expect {
        eprintln!("{flag} needs a value");
        return ExitCode::from(2);
    }
    let (Some(dir), Some(src), Some(dst)) = (dirs.first(), src, dst) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let header = match dataset::load_header(Path::new(dir)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let lookup = |name: &str| -> Option<DeviceId> {
        let id = header.topo.lookup(name);
        if id.is_none() {
            eprintln!("{dir}: no device named {name:?}");
        }
        id
    };
    let (Some(src), Some(dst)) = (lookup(&src), lookup(&dst)) else {
        return ExitCode::from(2);
    };
    let via = match &via {
        Some(name) => match lookup(name) {
            Some(id) => Some(id),
            None => return ExitCode::from(2),
        },
        None => None,
    };
    let (prefix_value, prefix_len) = prefix.unwrap_or((0, 0));

    // Pass 1 over the route files: the complete action table.
    let mut actions = ActionTable::new();
    let total = match header.stream_routes(&mut actions, |_, _| Ok(())) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let actions = Arc::new(actions);

    // Sharded pool with the query hub attached; bulk-load + seal
    // publishes one snapshot per shard.
    let plan = SubspacePlan::by_prefix_bits(&header.layout, FieldId(0), shard_bits);
    let hub = QueryHub::new(plan.len());
    let mut cfg = ShardPoolConfig::model_only(
        header.layout.clone(),
        plan.clone(),
        usize::MAX,
        plan.len(),
    );
    cfg.topo = header.topo.clone();
    cfg.actions = actions.clone();
    cfg.query_hub = Some(Arc::clone(&hub));
    let svc_cfg = QueryServiceConfig::for_pool(&cfg, hub, readers);
    let mut pool = match ShardPool::spawn(cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let t0 = std::time::Instant::now();
    let streamed = header.stream_routes_resolved(&actions, |dev, rules| {
        let updates: Vec<(DeviceId, RuleUpdate)> =
            rules.into_iter().map(|r| (dev, RuleUpdate::insert(r))).collect();
        pool.ingest(updates).expect("thread-mode pool accepts bulk ingest");
        Ok(())
    });
    if let Err(e) = streamed {
        eprintln!("{dir}: {e}");
        return ExitCode::from(2);
    }
    pool.seal_snapshot(header.route_devices.clone())
        .expect("thread-mode pool accepts seal");
    let Some(sealed) = pool.recv_epoch(Duration::from_secs(600)) else {
        eprintln!("{dir}: seal epoch did not complete");
        return ExitCode::from(2);
    };
    if !quiet {
        println!(
            "sealed {dir}: {} rules, {} classes across {} shards, {:.1?}",
            total,
            sealed.total_classes(),
            pool.shard_count(),
            t0.elapsed()
        );
    }

    let svc = match QueryService::spawn(svc_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let session = svc.session("cli", Backpressure::Shed { max_lag: 64 });
    let query = match via {
        Some(via) => Query::Waypoint { src, via, dst, prefix_value, prefix_len },
        None => Query::Reach { src, dst, prefix_value, prefix_len },
    };
    let t0 = std::time::Instant::now();
    let answer = match session.query(query) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = t0.elapsed();

    let (classes, good, what) = match answer.kind {
        AnswerKind::Reach { classes, reachable } => (classes, reachable, "deliver"),
        AnswerKind::Waypoint { classes, satisfied } => (classes, satisfied, "traverse"),
        AnswerKind::WhatIf { .. } => unreachable!("CLI issues reach/waypoint only"),
    };
    let verdict = if classes == 0 {
        "EMPTY (no class intersects the prefix)"
    } else if good == classes {
        "HOLDS"
    } else {
        "VIOLATED"
    };
    println!(
        "{verdict}: {good}/{classes} intersecting classes {what} \
         {} -> {}{} for {} ({elapsed:.1?})",
        header.topo.name(src),
        header.topo.name(dst),
        via.map(|v| format!(" via {}", header.topo.name(v))).unwrap_or_default(),
        format_prefix(prefix_value, prefix_len),
    );
    if !quiet {
        let epochs: Vec<String> = answer
            .consulted
            .iter()
            .map(|(s, e)| format!("shard {s}@epoch {e}"))
            .collect();
        println!(
            "consulted: [{}]{}",
            epochs.join(", "),
            if answer.missing.is_empty() {
                String::new()
            } else {
                format!("; unsealed shards {:?}", answer.missing)
            }
        );
    }
    pool.drain(Duration::from_secs(60));
    svc.shutdown();
    if classes > 0 && good == classes {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Pretty-prints a durable epoch journal: checkpoint summary, journaled
/// jobs, tail status.
fn print_journal(path: &str) -> ExitCode {
    let (entries, tail) = match EpochJournal::read_entries(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!("{path}: {} entries", entries.len());
    for (i, e) in entries.iter().enumerate() {
        match e {
            JournalEntry::Checkpoint(cp) => {
                let last = if cp.last_seq == u64::MAX {
                    "-".to_string()
                } else {
                    cp.last_seq.to_string()
                };
                println!(
                    "  [{i}] checkpoint worker={} last_seq={last} shards={} delivered={}",
                    cp.worker,
                    cp.shards.len(),
                    cp.reported.len()
                );
                for s in &cp.shards {
                    println!(
                        "        shard {} built={} fib_rules={} synced={} classes={} \
                         updates_accepted={}",
                        s.shard,
                        s.built,
                        s.fibs.iter().map(|(_, rs)| rs.len()).sum::<usize>(),
                        s.synced.len(),
                        s.class_fingerprints.len(),
                        s.stats.updates_accepted
                    );
                }
            }
            JournalEntry::Block(b) => {
                println!(
                    "  [{i}] block seq={} updates={} shards_touched={}",
                    b.seq,
                    b.updates.len(),
                    b.routed.iter().filter(|r| !r.is_empty()).count()
                );
            }
            JournalEntry::Collect => println!("  [{i}] collect"),
            JournalEntry::Ingest(b) => {
                println!(
                    "  [{i}] ingest updates={} shards_touched={}",
                    b.updates.len(),
                    b.routed.iter().filter(|r| !r.is_empty()).count()
                );
            }
            JournalEntry::Seal { seq, devices } => {
                println!("  [{i}] seal seq={seq} devices={}", devices.len());
            }
        }
    }
    match tail {
        JournalTail::Clean => {
            println!("tail: clean");
            ExitCode::SUCCESS
        }
        JournalTail::Torn(msg) => {
            println!("tail: torn ({msg}) — entries above were recovered");
            ExitCode::from(1)
        }
    }
}

/// Prints every equivalence class as a witness prefix plus its action
/// vector.
fn print_classes(
    verifier: &mut SubspaceVerifier,
    topo: &Arc<Topology>,
    actions: &Arc<ActionTable>,
) {
    let topo = topo.clone();
    let actions = actions.clone();
    let mgr = verifier.manager_mut();
    let (engine, pat, model) = mgr.parts_mut();
    println!("equivalence classes:");
    for (i, e) in model.entries().iter().enumerate() {
        let frac = engine.sat_fraction(&e.pred);
        let witness = engine
            .any_sat(&e.pred)
            .map(|bits| {
                let v: u64 = bits.iter().fold(0, |acc, &b| (acc << 1) | b as u64);
                format_prefix(v, 32)
            })
            .unwrap_or_else(|| "-".into());
        let vector: Vec<String> = pat
            .entries(e.vector)
            .iter()
            .map(|(d, a)| {
                let hops: Vec<&str> = actions
                    .next_hops(*a)
                    .iter()
                    .map(|h| topo.name(*h))
                    .collect();
                format!(
                    "{}→{}",
                    topo.name(*d),
                    if hops.is_empty() {
                        "drop".to_string()
                    } else {
                        hops.join("|")
                    }
                )
            })
            .collect();
        println!(
            "  [{}] {:>6.2}% of space, witness {} : {}",
            i,
            frac * 100.0,
            witness,
            if vector.is_empty() {
                "all-default".to_string()
            } else {
                vector.join(", ")
            }
        );
    }
}
