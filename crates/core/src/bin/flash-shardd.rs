//! `flash-shardd` — the child half of `ShardMode::Process`.
//!
//! Spawned by the shard pool, never run by hand: it speaks the binary
//! frame protocol of `flash_core::wire` over stdin/stdout (Hello, then
//! Block/Collect/CheckpointReq/Restore) and exits when stdin closes.
//! All logic lives in `flash_core::proc::shardd_main` so the library
//! and the binary cannot drift apart.

fn main() {
    std::process::exit(flash_core::proc::shardd_main());
}
