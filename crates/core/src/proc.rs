//! Process-isolated shard workers (`ShardMode::Process`).
//!
//! Thread-mode supervision (`catch_unwind`) contains panics, but not
//! aborts, stack overflows, runaway allocation, or memory corruption —
//! a single bad shard takes the whole verifier down. In process mode
//! each shard worker runs as a supervised **child process**
//! (`flash-shardd`) speaking the [`crate::wire`] frame protocol over
//! stdin/stdout, so the blast radius of any failure is one worker.
//!
//! The parent side is [`ProcShardWorker`]: a [`SupervisedWorker`] whose
//! state is a [`ChildHandle`]. Each job is one synchronous round-trip —
//! a `Block` frame down, one `Result` frame back per owned shard — so
//! the lockstep mirrors thread mode's per-job synchrony and the
//! verdict-stream equivalence between the two modes holds by
//! construction. Failure detection is layered:
//!
//! * **death** — the child's stdout reaches EOF (reader thread hangs
//!   up) or a write to its stdin fails;
//! * **hang** — the child emits `Heartbeat` frames from a dedicated
//!   thread; silence beyond [`RecoveryOptions::heartbeat_timeout`]
//!   means the child is wedged (the heartbeat thread shares the stdout
//!   lock with result writes, so a child stuck holding that lock stops
//!   heartbeating — an *honest* liveness signal). A whole round-trip
//!   exceeding [`RecoveryOptions::epoch_deadline`] is also a hang;
//! * **corruption** — a frame with a bad checksum or an undecodable
//!   payload.
//!
//! All three surface as a parent-side panic, which the supervision
//! layer ([`crate::supervise`]) treats like any worker crash: kill the
//! child (the handle's `Drop`), back off, respawn, and replay from the
//! last checkpoint. Restore ships the [`WorkerCheckpoint`] to the fresh
//! child as a `Restore` frame.

use crate::error::FlashError;
use crate::journal::EpochJournal;
use crate::shard::{ShardCore, ShardCoreConfig, ShardJob, ShardPoolConfig, ShardResult};
use crate::supervise::{OutputClosed, SupervisedWorker};
use crate::verifier::Property;
use crate::wire::{
    self, read_frame, write_frame, write_value_frame, ChildFaults, FrameKind, FrameRead,
    ProcHello, WorkerCheckpoint,
};
use flash_bdd::EngineTelemetry;
use flash_imt::SubspacePlan;
use flash_netmodel::{ActionId, ActionTable, HeaderLayout, Topology};
use std::collections::HashSet;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub(crate) const DEFAULT_HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(1);
pub(crate) const DEFAULT_EPOCH_DEADLINE: Duration = Duration::from_secs(30);

/// Locates the `flash-shardd` binary: explicit config path, then the
/// `FLASH_SHARDD` environment variable, then siblings of the current
/// executable (covering `target/<profile>/` and
/// `target/<profile>/deps/` layouts).
pub(crate) fn resolve_shardd(explicit: &Option<PathBuf>) -> Result<PathBuf, FlashError> {
    if let Some(p) = explicit {
        if p.is_file() {
            return Ok(p.clone());
        }
        return Err(FlashError::Config(format!(
            "shardd binary not found at {}",
            p.display()
        )));
    }
    if let Ok(p) = std::env::var("FLASH_SHARDD") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(FlashError::Config(format!(
            "FLASH_SHARDD points at {}, which does not exist",
            p.display()
        )));
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors().skip(1).take(3) {
            let cand = dir.join("flash-shardd");
            if cand.is_file() {
                return Ok(cand);
            }
        }
    }
    Err(FlashError::Config(
        "flash-shardd binary not found; set RecoveryOptions::shardd_path or FLASH_SHARDD".into(),
    ))
}

/// What the reader thread hands the parent: a frame, or the transport
/// error that ended the stream. Channel disconnection = child EOF.
type ChildFrame = Result<(FrameKind, Vec<u8>), String>;

/// A live child process plus its frame-reader thread. Dropping the
/// handle kills and reaps the child — no zombies, whatever path
/// (panic, drain, output-closed) releases the state.
pub(crate) struct ChildHandle {
    child: Child,
    stdin: ChildStdin,
    frames: mpsc::Receiver<ChildFrame>,
}

impl Drop for ChildHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Parent-side proxy for one `flash-shardd` worker.
pub(crate) struct ProcShardWorker {
    /// Hello template for spawns. `faults` is latched to the default
    /// after the first spawn so an injected fault fires at most once
    /// per pool run (a respawned child must not re-fire it during
    /// replay).
    hello: ProcHello,
    shardd: PathBuf,
    worker: usize,
    /// Results expected per block round-trip (= owned shards).
    owned: usize,
    out: mpsc::Sender<ShardResult>,
    /// Parent-side delivery dedup; survives child restarts.
    reported: HashSet<(u64, usize)>,
    last_seq: Option<u64>,
    heartbeat_timeout: Duration,
    epoch_deadline: Duration,
    checkpoint_every: Option<u64>,
    journal: Option<EpochJournal>,
    /// Engine telemetry folded from the latest block's results.
    telemetry: EngineTelemetry,
}

impl ProcShardWorker {
    pub fn new(
        cfg: &ShardPoolConfig,
        shardd: PathBuf,
        shards: Vec<usize>,
        worker: usize,
        out: mpsc::Sender<ShardResult>,
        journal: Option<EpochJournal>,
    ) -> Self {
        let heartbeat_timeout =
            cfg.recovery.heartbeat_timeout.unwrap_or(DEFAULT_HEARTBEAT_TIMEOUT);
        let faults = cfg
            .faults
            .as_ref()
            .map(|p| ChildFaults {
                kill_at_block: p.kill_process_for(worker),
                hang_at_block: p
                    .hang_for(worker)
                    .map(|(after, dur)| (after, dur.as_millis() as u64)),
                corrupt_frame: p.corrupt_for(worker),
            })
            .unwrap_or_default();
        let hello = ProcHello {
            worker,
            shards,
            layout: cfg
                .layout
                .fields()
                .map(|(_, f)| (f.name.clone(), f.width))
                .collect(),
            devices: cfg
                .topo
                .devices()
                .map(|d| (cfg.topo.name(d).to_string(), cfg.topo.is_external(d)))
                .collect(),
            links: cfg
                .topo
                .devices()
                .flat_map(|d| cfg.topo.successors(d).iter().map(move |s| (d.0, s.0)))
                .collect(),
            actions: (0..cfg.actions.len())
                .map(|i| cfg.actions.get(ActionId(i as u32)).clone())
                .collect(),
            subspaces: cfg.plan.subspaces.clone(),
            loop_freedom: cfg
                .properties
                .iter()
                .any(|p| matches!(p, Property::LoopFreedom)),
            bst: cfg.bst as u64,
            tuning: cfg.tuning,
            collect_class_keys: cfg.collect_class_keys,
            heartbeat_ms: (heartbeat_timeout.as_millis() as u64 / 4).max(10),
            faults,
        };
        let owned = hello.shards.len();
        ProcShardWorker {
            hello,
            shardd,
            worker,
            owned,
            out,
            reported: HashSet::new(),
            last_seq: None,
            heartbeat_timeout,
            epoch_deadline: cfg.recovery.epoch_deadline.unwrap_or(DEFAULT_EPOCH_DEADLINE),
            checkpoint_every: cfg.recovery.checkpoint_every,
            journal,
            telemetry: EngineTelemetry::default(),
        }
    }

    /// Panics with a transport-level failure; supervision turns this
    /// into kill + backoff + respawn + checkpoint replay.
    fn transport_panic(&self, msg: impl Into<String>) -> ! {
        panic!("{}", FlashError::Process { worker: self.worker, msg: msg.into() })
    }

    fn spawn_child(&mut self, restore: Option<&WorkerCheckpoint>) -> ChildHandle {
        let mut child = match Command::new(&self.shardd)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
        {
            Ok(c) => c,
            Err(e) => self.transport_panic(format!(
                "failed to spawn {}: {e}",
                self.shardd.display()
            )),
        };
        let mut stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (ftx, frames) = mpsc::channel::<ChildFrame>();
        std::thread::spawn(move || {
            let mut r = BufReader::new(stdout);
            loop {
                match read_frame(&mut r) {
                    Ok(FrameRead::Frame(kind, payload)) => {
                        if ftx.send(Ok((kind, payload))).is_err() {
                            return; // parent gone
                        }
                    }
                    Ok(FrameRead::Eof) => return, // hangup signals EOF
                    Err(e) => {
                        let _ = ftx.send(Err(e.to_string()));
                        return;
                    }
                }
            }
        });
        let hello = self.hello.clone();
        // Latch: injected faults ride the first Hello only. A child
        // respawned after the fault fired replays the same blocks and
        // must not re-fire it.
        self.hello.faults = ChildFaults::default();
        if let Err(e) = write_value_frame(&mut stdin, FrameKind::Hello, &hello) {
            drop(ChildHandle { child, stdin, frames });
            self.transport_panic(format!("hello write failed: {e}"));
        }
        if let Some(cp) = restore {
            if let Err(e) = write_value_frame(&mut stdin, FrameKind::Restore, cp) {
                drop(ChildHandle { child, stdin, frames });
                self.transport_panic(format!("restore write failed: {e}"));
            }
        }
        ChildHandle { child, stdin, frames }
    }

    /// Waits for the next non-heartbeat frame, enforcing both liveness
    /// layers: heartbeat silence and the whole-round-trip deadline.
    fn await_frame(&self, handle: &ChildHandle, round_start: Instant) -> (FrameKind, Vec<u8>) {
        let mut last_alive = Instant::now();
        loop {
            if round_start.elapsed() > self.epoch_deadline {
                self.transport_panic(format!(
                    "epoch deadline {:?} exceeded",
                    self.epoch_deadline
                ));
            }
            if last_alive.elapsed() > self.heartbeat_timeout {
                self.transport_panic(format!(
                    "no heartbeat for {:?} (child hung)",
                    self.heartbeat_timeout
                ));
            }
            match handle.frames.recv_timeout(Duration::from_millis(25)) {
                Ok(Ok((FrameKind::Heartbeat, _))) => last_alive = Instant::now(),
                Ok(Ok(frame)) => return frame,
                Ok(Err(msg)) => self.transport_panic(format!("corrupt frame: {msg}")),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    self.transport_panic("child process died (stdout EOF)")
                }
            }
        }
    }

    fn send_job_frame(&self, handle: &mut ChildHandle, job: &ShardJob) {
        let res = match job {
            ShardJob::Block(b) => write_value_frame(&mut handle.stdin, FrameKind::Block, &**b),
            ShardJob::Collect => write_frame(&mut handle.stdin, FrameKind::Collect, &[]),
            // Gated at the ShardPool API: bulk-ingestion jobs are never
            // routed to process-mode workers.
            ShardJob::Ingest(_) | ShardJob::Seal { .. } => {
                unreachable!("bulk-ingestion jobs are thread-mode only")
            }
        };
        if let Err(e) = res {
            self.transport_panic(format!("job write failed: {e}"));
        }
    }
}

impl SupervisedWorker for ProcShardWorker {
    type Job = ShardJob;
    type State = ChildHandle;
    type Checkpoint = WorkerCheckpoint;

    fn build(&mut self) -> ChildHandle {
        self.spawn_child(None)
    }

    fn restore(&mut self, cp: &WorkerCheckpoint) -> ChildHandle {
        self.spawn_child(Some(cp))
    }

    fn checkpoint_every(&self) -> Option<u64> {
        self.checkpoint_every
    }

    fn take_checkpoint(&mut self, state: &mut ChildHandle) -> Option<WorkerCheckpoint> {
        if let Err(e) = write_frame(&mut state.stdin, FrameKind::CheckpointReq, &[]) {
            self.transport_panic(format!("checkpoint request failed: {e}"));
        }
        let (kind, payload) = self.await_frame(state, Instant::now());
        if kind != FrameKind::Checkpoint {
            self.transport_panic(format!("expected Checkpoint frame, got {kind:?}"));
        }
        let mut cp: WorkerCheckpoint = match wire::decode(&payload) {
            Ok(cp) => cp,
            Err(e) => self.transport_panic(format!("undecodable checkpoint: {e}")),
        };
        // Delivery bookkeeping lives on the parent (it survives child
        // restarts); the child only snapshots verification state.
        cp.worker = self.worker;
        cp.last_seq = self.last_seq.unwrap_or(u64::MAX);
        cp.reported = {
            let mut v: Vec<(u64, u64)> =
                self.reported.iter().map(|&(s, sh)| (s, sh as u64)).collect();
            v.sort_unstable();
            v
        };
        Some(cp)
    }

    fn journal_job(&mut self, job: &ShardJob) {
        if let Some(j) = &mut self.journal {
            let res = match job {
                ShardJob::Block(b) => j.append_block(b),
                ShardJob::Collect => j.append_collect(),
                ShardJob::Ingest(b) => j.append_ingest(b),
                ShardJob::Seal { seq, devices } => j.append_seal(*seq, devices),
            };
            if let Err(e) = res {
                eprintln!("flash: disabling durable journal: {e}");
                self.journal = None;
            }
        }
    }

    fn journal_checkpoint(&mut self, cp: &WorkerCheckpoint) {
        if let Some(j) = &mut self.journal {
            if let Err(e) = j.rotate_checkpoint(cp) {
                eprintln!("flash: disabling durable journal: {e}");
                self.journal = None;
            }
        }
    }

    fn process(&mut self, state: &mut ChildHandle, job: ShardJob) -> Result<(), OutputClosed> {
        self.send_job_frame(state, &job);
        let round_start = Instant::now();
        match job {
            ShardJob::Collect => {
                let (kind, _) = self.await_frame(state, round_start);
                if kind != FrameKind::CollectDone {
                    self.transport_panic(format!("expected CollectDone, got {kind:?}"));
                }
                Ok(())
            }
            ShardJob::Block(block) => {
                self.last_seq = Some(block.seq);
                // Lockstep: one Result frame per owned shard, matching
                // thread mode's per-job synchrony exactly.
                let mut telemetry = EngineTelemetry::default();
                for _ in 0..self.owned {
                    let (kind, payload) = self.await_frame(state, round_start);
                    if kind != FrameKind::Result {
                        self.transport_panic(format!("expected Result frame, got {kind:?}"));
                    }
                    let r: ShardResult = match wire::decode(&payload) {
                        Ok(r) => r,
                        Err(e) => self.transport_panic(format!("undecodable result: {e}")),
                    };
                    telemetry.absorb(&r.engine);
                    if self.reported.insert((r.seq, r.shard)) {
                        self.out.send(r).map_err(|_| OutputClosed)?;
                    }
                }
                self.telemetry = telemetry;
                Ok(())
            }
            ShardJob::Ingest(_) | ShardJob::Seal { .. } => {
                unreachable!("bulk-ingestion jobs are thread-mode only")
            }
        }
    }

    fn telemetry(&self, _state: &ChildHandle) -> EngineTelemetry {
        self.telemetry
    }
}

// ---------------------------------------------------------------------
// Child side: the `flash-shardd` main loop.
// ---------------------------------------------------------------------

/// Rebuilds the shard-core configuration a Hello frame describes.
fn core_config_from_hello(hello: &ProcHello) -> ShardCoreConfig {
    let fields: Vec<(&str, u32)> =
        hello.layout.iter().map(|(n, w)| (n.as_str(), *w)).collect();
    let layout = HeaderLayout::new(&fields);
    let mut topo = Topology::new();
    for (name, external) in &hello.devices {
        if *external {
            topo.add_external(name.clone());
        } else {
            topo.add_device(name.clone());
        }
    }
    for &(from, to) in &hello.links {
        topo.add_link(flash_netmodel::DeviceId(from), flash_netmodel::DeviceId(to));
    }
    // Interning in id order reproduces identical ActionIds (Drop is
    // preinterned as id 0 by `ActionTable::new`, matching the parent).
    let mut actions = ActionTable::new();
    for a in &hello.actions {
        actions.intern(a.clone());
    }
    ShardCoreConfig {
        topo: Arc::new(topo),
        actions: Arc::new(actions),
        layout,
        plan: SubspacePlan { subspaces: hello.subspaces.clone() },
        properties: if hello.loop_freedom {
            vec![Property::LoopFreedom]
        } else {
            Vec::new()
        },
        bst: hello.bst as usize,
        collect_class_keys: hello.collect_class_keys,
        tuning: hello.tuning,
    }
}

/// Writes one frame under the shared stdout lock (heartbeat thread and
/// result writes interleave at frame granularity).
fn write_locked(
    out: &Mutex<std::io::Stdout>,
    bytes: &[u8],
) -> Result<(), std::io::Error> {
    let mut o = out.lock().unwrap();
    o.write_all(bytes)?;
    o.flush()
}

/// The `flash-shardd` entry point: reads the Hello, hosts a
/// [`ShardCore`], and answers frames until stdin closes. Returns the
/// process exit code.
///
/// Liveness contract: a dedicated thread emits `Heartbeat` frames every
/// `heartbeat_ms` **under the same stdout lock as result writes** — a
/// child wedged while holding that lock (e.g. the injected hang fault)
/// genuinely stops heartbeating, which is exactly what the parent's
/// hang detector is supposed to catch.
pub fn shardd_main() -> i32 {
    let stdin = std::io::stdin();
    let mut input = BufReader::new(stdin.lock());
    let hello: ProcHello = match read_frame(&mut input) {
        Ok(FrameRead::Frame(FrameKind::Hello, payload)) => match wire::decode(&payload) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("flash-shardd: bad hello: {e}");
                return 2;
            }
        },
        other => {
            eprintln!("flash-shardd: expected Hello frame, got {:?}", other.map(|_| ()));
            return 2;
        }
    };
    let cfg = core_config_from_hello(&hello);
    let mut core = ShardCore::new(cfg.clone(), hello.shards.clone(), hello.worker);
    let mut last_seq: Option<u64> = None;

    let out = Arc::new(Mutex::new(std::io::stdout()));
    {
        let out = out.clone();
        let every = Duration::from_millis(hello.heartbeat_ms.max(1));
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            if write_locked(&out, &wire::frame_bytes(FrameKind::Heartbeat, &[])).is_err() {
                return; // parent gone
            }
        });
    }

    let faults = hello.faults;
    let mut blocks_seen: u64 = 0;
    let mut results_written: u64 = 0;
    let mut hang_fired = false;

    loop {
        let (kind, payload) = match read_frame(&mut input) {
            Ok(FrameRead::Frame(k, p)) => (k, p),
            Ok(FrameRead::Eof) => return 0, // parent closed stdin: shutdown
            Err(e) => {
                eprintln!("flash-shardd: corrupt inbound frame: {e}");
                return 3;
            }
        };
        match kind {
            FrameKind::Block => {
                blocks_seen += 1;
                if let Some(n) = faults.kill_at_block {
                    if blocks_seen >= n {
                        // A hard abort, not a panic: the process dies
                        // mid-protocol, the way a real crash would.
                        std::process::abort();
                    }
                }
                if let Some((n, ms)) = faults.hang_at_block {
                    if blocks_seen >= n && !hang_fired {
                        hang_fired = true;
                        // Wedge while *holding the output lock*: the
                        // heartbeat thread starves, so the parent sees a
                        // real heartbeat loss rather than a simulated
                        // flag.
                        let _guard = out.lock().unwrap();
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                let block: crate::shard::UpdateBlock = match wire::decode(&payload) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("flash-shardd: bad block: {e}");
                        return 3;
                    }
                };
                last_seq = Some(block.seq);
                let corrupt_at = faults.corrupt_frame;
                let out_ref = &out;
                let res = core.apply_block(&block, |r| {
                    results_written += 1;
                    let payload = wire::encode(&r);
                    let mut bytes = wire::frame_bytes(FrameKind::Result, &payload);
                    if corrupt_at == Some(results_written) {
                        // Flip a payload byte *after* the checksum was
                        // computed: the parent must detect the mismatch.
                        let mid = 5 + payload.len() / 2;
                        bytes[mid] ^= 0x5A;
                    }
                    write_locked(out_ref, &bytes).map_err(|_| OutputClosed)?;
                    Ok(())
                });
                if res.is_err() {
                    return 0; // parent hung up
                }
            }
            FrameKind::Collect => {
                core.collect();
                if write_locked(&out, &wire::frame_bytes(FrameKind::CollectDone, &[])).is_err() {
                    return 0;
                }
            }
            FrameKind::CheckpointReq => {
                // Delivery bookkeeping is parent-side; the child
                // snapshots verification state only.
                let cp = core.checkpoint(last_seq, &HashSet::new());
                let payload = wire::encode(&cp);
                if write_locked(&out, &wire::frame_bytes(FrameKind::Checkpoint, &payload)).is_err()
                {
                    return 0;
                }
            }
            FrameKind::Restore => {
                let cp: WorkerCheckpoint = match wire::decode(&payload) {
                    Ok(cp) => cp,
                    Err(e) => {
                        eprintln!("flash-shardd: bad restore checkpoint: {e}");
                        return 3;
                    }
                };
                if cp.last_seq != u64::MAX {
                    last_seq = Some(cp.last_seq);
                }
                core = ShardCore::restore(cfg.clone(), hello.shards.clone(), hello.worker, &cp);
            }
            FrameKind::Shutdown => return 0,
            other => {
                eprintln!("flash-shardd: unexpected frame {other:?}");
                return 3;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_shardd_rejects_missing_explicit_path() {
        let missing = Some(PathBuf::from("/nonexistent/flash-shardd"));
        assert!(matches!(
            resolve_shardd(&missing),
            Err(FlashError::Config(_))
        ));
    }

    #[test]
    fn hello_reconstruction_matches_parent_universe() {
        use flash_netmodel::{ActionTable as AT, HeaderLayout as HL, Topology as T};
        let mut topo = T::new();
        let a = topo.add_device("a");
        let b = topo.add_device("b");
        let x = topo.add_external("x");
        topo.add_bilink(a, b);
        topo.add_link(b, x);
        let mut actions = AT::new();
        actions.fwd(a);
        actions.ecmp(vec![a, b]);
        let layout = HL::new(&[("dst", 8), ("src", 4)]);
        let hello = ProcHello {
            worker: 0,
            shards: vec![0],
            layout: layout.fields().map(|(_, f)| (f.name.clone(), f.width)).collect(),
            devices: topo
                .devices()
                .map(|d| (topo.name(d).to_string(), topo.is_external(d)))
                .collect(),
            links: topo
                .devices()
                .flat_map(|d| topo.successors(d).iter().map(move |s| (d.0, s.0)))
                .collect(),
            actions: (0..actions.len())
                .map(|i| actions.get(ActionId(i as u32)).clone())
                .collect(),
            subspaces: vec![flash_imt::SubspaceSpec::whole()],
            loop_freedom: true,
            bst: 1,
            tuning: flash_imt::ImtTuning::default(),
            collect_class_keys: false,
            heartbeat_ms: 100,
            faults: ChildFaults::default(),
        };
        let cfg = core_config_from_hello(&hello);
        assert_eq!(cfg.topo.device_count(), 3);
        assert!(cfg.topo.is_external(x));
        assert!(cfg.topo.has_link(a, b) && cfg.topo.has_link(b, x));
        assert_eq!(cfg.actions.len(), actions.len());
        for i in 0..actions.len() {
            let id = ActionId(i as u32);
            assert_eq!(cfg.actions.get(id), actions.get(id), "action ids must be stable");
        }
        assert_eq!(cfg.layout.fields().count(), 2);
        assert!(matches!(cfg.properties[..], [Property::LoopFreedom]));
    }
}
