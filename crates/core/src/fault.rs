//! Deterministic, seed-driven fault injection for the live service.
//!
//! Distributed DPV deployments see agent messages dropped, duplicated,
//! reordered and delayed, and verifier workers crash. This module makes
//! those faults reproducible test inputs: a [`FaultPlan`] describes the
//! fault mix, and a [`FaultInjector`] applies it to the message stream
//! at the service ingress, deterministically for a given seed.
//!
//! Transport faults model an at-least-once agent channel:
//!
//! * **drop** — the first transmission is lost; the message is
//!   *retransmitted* after up to `max_hold` later sends (the agent's
//!   reliable-delivery retry). A drop therefore delays, never erases.
//! * **duplicate** — the message is delivered twice (retry after a lost
//!   ack). The service's ingress dedup filter must absorb it.
//! * **reorder** — the message is held back behind up to `max_hold`
//!   later messages, then delivered out of order.
//!
//! Worker faults are triggered inside the supervised worker:
//!
//! * **kill** — worker `worker` panics once, after processing
//!   `after_batches` messages (exercises supervision + epoch replay);
//! * **worker_delay** — every batch takes at least this long (turns a
//!   worker into the slow consumer backpressure policies act on).

use crate::live::LiveMessage;
use std::time::Duration;

/// Kill one worker after it has processed a number of batches. The kill
/// fires exactly once, even though the replayed batches are processed
/// again after the restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    pub worker: usize,
    pub after_batches: u64,
}

/// Stall one worker for `duration` after it has processed
/// `after_batches` batches; fires exactly once. In thread mode the
/// worker simply goes slow; in process mode the child stops heartbeating
/// while stalled, so the hang is *detected* and the child is killed and
/// respawned — the distinction the heartbeat exists to exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HangSpec {
    pub worker: usize,
    pub after_batches: u64,
    pub duration: Duration,
}

/// Corrupt the Nth result frame a process-mode child writes (a byte is
/// flipped *after* the checksum is computed, so the parent sees a CRC
/// mismatch); fires exactly once. Ignored in thread mode — there is no
/// wire to corrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptSpec {
    pub worker: usize,
    /// 1-based index of the result frame to corrupt.
    pub after_frames: u64,
}

/// A reproducible fault mix. Probabilities are per message in `[0, 1]`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability a message's first transmission is lost (it is
    /// retransmitted later).
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub dup_prob: f64,
    /// Probability a message is held back and delivered out of order.
    pub reorder_prob: f64,
    /// Upper bound on how many later sends a held message waits behind.
    pub max_hold: usize,
    /// Workers to kill (each fires once).
    pub kill_workers: Vec<KillSpec>,
    /// Workers to stall (each fires once).
    pub hang_workers: Vec<HangSpec>,
    /// Process-mode children to kill with a hard abort (no panic, no
    /// unwinding — the process dies mid-protocol). Fires once each.
    pub kill_process: Vec<KillSpec>,
    /// Process-mode result frames to corrupt (each fires once).
    pub corrupt_frames: Vec<CorruptSpec>,
    /// Minimum per-batch processing time (slow-consumer simulation).
    pub worker_delay: Option<Duration>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            max_hold: 4,
            kill_workers: Vec::new(),
            hang_workers: Vec::new(),
            kill_process: Vec::new(),
            corrupt_frames: Vec::new(),
            worker_delay: None,
        }
    }
}

impl FaultPlan {
    /// Validates probability bounds and kill targets against the worker
    /// count.
    pub fn validate(&self, workers: usize) -> Result<(), crate::error::FlashError> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("dup_prob", self.dup_prob),
            ("reorder_prob", self.reorder_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(crate::error::FlashError::Config(format!(
                    "{name} = {p} outside [0, 1]"
                )));
            }
        }
        if let Some(k) = self.kill_workers.iter().find(|k| k.worker >= workers) {
            return Err(crate::error::FlashError::Config(format!(
                "kill target worker {} out of range (workers = {})",
                k.worker, workers
            )));
        }
        if let Some(h) = self.hang_workers.iter().find(|h| h.worker >= workers) {
            return Err(crate::error::FlashError::Config(format!(
                "hang target worker {} out of range (workers = {})",
                h.worker, workers
            )));
        }
        if let Some(k) = self.kill_process.iter().find(|k| k.worker >= workers) {
            return Err(crate::error::FlashError::Config(format!(
                "process-kill target worker {} out of range (workers = {})",
                k.worker, workers
            )));
        }
        if let Some(c) = self.corrupt_frames.iter().find(|c| c.worker >= workers) {
            return Err(crate::error::FlashError::Config(format!(
                "corrupt-frame target worker {} out of range (workers = {})",
                c.worker, workers
            )));
        }
        Ok(())
    }

    /// The kill trigger for `worker`, if any.
    pub(crate) fn kill_for(&self, worker: usize) -> Option<u64> {
        self.kill_workers
            .iter()
            .find(|k| k.worker == worker)
            .map(|k| k.after_batches)
    }

    /// The hang trigger for `worker`, if any.
    pub(crate) fn hang_for(&self, worker: usize) -> Option<(u64, Duration)> {
        self.hang_workers
            .iter()
            .find(|h| h.worker == worker)
            .map(|h| (h.after_batches, h.duration))
    }

    /// The process-kill trigger for `worker`, if any.
    pub(crate) fn kill_process_for(&self, worker: usize) -> Option<u64> {
        self.kill_process
            .iter()
            .find(|k| k.worker == worker)
            .map(|k| k.after_batches)
    }

    /// The frame-corruption trigger for `worker`, if any.
    pub(crate) fn corrupt_for(&self, worker: usize) -> Option<u64> {
        self.corrupt_frames
            .iter()
            .find(|c| c.worker == worker)
            .map(|c| c.after_frames)
    }
}

/// SplitMix64: a tiny deterministic generator for injection decisions.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            return 0;
        }
        self.next_u64() % bound
    }
}

/// Counters of what the injector actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub dropped_then_retransmitted: u64,
    pub duplicated: u64,
    pub reordered: u64,
}

/// Applies a [`FaultPlan`] to a message stream. `offer` maps each
/// original send to zero or more deliveries; `flush` releases every
/// still-held message (the retransmission when the feed idles).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Held messages with the send-counter value at which they release.
    pending: Vec<(u64, LiveMessage)>,
    sends: u64,
    stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64(plan.seed ^ 0xD1B5_4A32_D192_ED03);
        FaultInjector {
            plan,
            rng,
            pending: Vec::new(),
            sends: 0,
            stats: FaultStats::default(),
        }
    }

    fn release_due(&mut self, out: &mut Vec<LiveMessage>) {
        let sends = self.sends;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= sends {
                out.push(self.pending.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
    }

    fn hold(&mut self, msg: LiveMessage) {
        let wait = 1 + self.rng.below(self.plan.max_hold.max(1) as u64);
        self.pending.push((self.sends + wait, msg));
    }

    /// Feeds one original message; returns the deliveries it produces
    /// (possibly none now, possibly held messages from earlier sends).
    pub fn offer(&mut self, msg: LiveMessage) -> Vec<LiveMessage> {
        self.sends += 1;
        let mut out = Vec::with_capacity(2);
        if self.rng.chance(self.plan.drop_prob) {
            // Lost on the wire; retransmitted later.
            self.stats.dropped_then_retransmitted += 1;
            self.hold(msg);
        } else if self.rng.chance(self.plan.dup_prob) {
            self.stats.duplicated += 1;
            out.push(msg.clone());
            out.push(msg);
        } else if self.rng.chance(self.plan.reorder_prob) {
            self.stats.reordered += 1;
            self.hold(msg);
        } else {
            out.push(msg);
        }
        self.release_due(&mut out);
        out
    }

    /// Releases every held message (call before drain/shutdown).
    pub fn flush(&mut self) -> Vec<LiveMessage> {
        self.pending.sort_by_key(|(release, _)| *release);
        self.pending.drain(..).map(|(_, m)| m).collect()
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_netmodel::DeviceId;

    fn msg(at: u64) -> LiveMessage {
        LiveMessage {
            at,
            device: DeviceId(at as u32),
            epoch: 1,
            updates: vec![],
        }
    }

    fn run(plan: FaultPlan, n: u64) -> Vec<u64> {
        let mut inj = FaultInjector::new(plan);
        let mut seen = Vec::new();
        for at in 0..n {
            for m in inj.offer(msg(at)) {
                seen.push(m.at);
            }
        }
        for m in inj.flush() {
            seen.push(m.at);
        }
        seen
    }

    #[test]
    fn no_faults_is_identity() {
        let seen = run(FaultPlan::default(), 20);
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 42,
            drop_prob: 0.2,
            dup_prob: 0.2,
            reorder_prob: 0.2,
            ..FaultPlan::default()
        };
        assert_eq!(run(plan.clone(), 50), run(plan.clone(), 50));
        let other = FaultPlan { seed: 43, ..plan };
        assert_ne!(run(other, 50), run(FaultPlan { seed: 42, ..FaultPlan::default() }, 50));
    }

    #[test]
    fn every_message_is_eventually_delivered_at_least_once() {
        let plan = FaultPlan {
            seed: 7,
            drop_prob: 0.3,
            dup_prob: 0.3,
            reorder_prob: 0.3,
            max_hold: 6,
            ..FaultPlan::default()
        };
        let seen = run(plan, 200);
        let mut unique: Vec<u64> = seen.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique, (0..200).collect::<Vec<_>>(), "lost messages");
        assert!(seen.len() >= 200, "duplicates should only add deliveries");
    }

    #[test]
    fn faults_actually_fire() {
        let plan = FaultPlan {
            seed: 9,
            drop_prob: 0.25,
            dup_prob: 0.25,
            reorder_prob: 0.25,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        for at in 0..300 {
            inj.offer(msg(at));
        }
        let s = inj.stats();
        assert!(s.dropped_then_retransmitted > 0);
        assert!(s.duplicated > 0);
        assert!(s.reordered > 0);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let bad = FaultPlan { drop_prob: 1.5, ..FaultPlan::default() };
        assert!(bad.validate(2).is_err());
        let bad = FaultPlan {
            kill_workers: vec![KillSpec { worker: 5, after_batches: 1 }],
            ..FaultPlan::default()
        };
        assert!(bad.validate(2).is_err());
        assert!(FaultPlan::default().validate(1).is_ok());
    }
}
