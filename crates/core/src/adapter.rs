//! A text adapter: parse a network description (topology + FIBs +
//! requirements) from a simple line-based format and feed it to Flash.
//!
//! The paper ships Flash as a library and notes that "developers can
//! easily write adapters that feed rule updates to Flash" (§5.1); this
//! module is the reference adapter used by the `flash-cli` binary.
//!
//! # Format
//!
//! ```text
//! # comments and blank lines are ignored
//! node  s1                    # internal switch
//! external gw                 # external node (owns prefixes / exits)
//! link  s1 s2                 # bidirectional link
//!
//! fib s1                      # start of s1's FIB
//!   10.0.1.0/24 2 s2          # prefix, priority, next hop
//!   10.0.2.0/24 1 ecmp(s2,s3) # ECMP next-hop set
//!   0.0.0.0/0   0 drop        # explicit drop
//!
//! require waypoint 10.0.1.0/24 from s1 path "s1 .* s3 .* gw"
//! require cover    10.0.0.0/8  from s1 path "s1 (s2|s3) .* gw"
//! ```
//!
//! Destination addresses are IPv4 dotted quads over the 32-bit
//! [`HeaderLayout::dst_only`] layout.

use crate::error::FlashError;
use crate::verifier::Property;
use flash_netmodel::{
    ActionTable, DeviceId, HeaderLayout, Match, Rule, Topology,
};
use flash_spec::{parse_path_expr, Requirement};
use std::sync::Arc;

/// A parsed network bundle ready to verify.
#[derive(Debug)]
pub struct NetworkFile {
    pub topo: Arc<Topology>,
    pub actions: Arc<ActionTable>,
    pub layout: HeaderLayout,
    /// Per-device rule lists, in file order.
    pub fibs: Vec<(DeviceId, Vec<Rule>)>,
    pub properties: Vec<Property>,
}

/// The non-FIB portion of a network description: everything a verifier
/// needs *before* rules start flowing. Produced by the streaming entry
/// points, which hand each device's rules to a sink instead of
/// materializing the whole `Vec<(DeviceId, Vec<Rule>)>` — at hyper scale
/// the rule bodies dwarf the topology by orders of magnitude.
#[derive(Debug)]
pub struct NetworkHeader {
    pub topo: Arc<Topology>,
    pub actions: Arc<ActionTable>,
    pub layout: HeaderLayout,
    pub properties: Vec<Property>,
    /// Devices with `fib` blocks, in file order (repeats allowed).
    pub fib_devices: Vec<DeviceId>,
    /// Total rules across all `fib` blocks.
    pub total_rules: usize,
}

/// Adapter parse failures are [`FlashError::Parse`] values carrying the
/// 1-based line number; this alias keeps the seed's name working.
pub type AdapterError = FlashError;

fn err(line: usize, message: impl Into<String>) -> FlashError {
    FlashError::parse(line, message)
}

/// Parses `a.b.c.d/len` into `(value, len)` over 32 bits.
pub fn parse_prefix(s: &str, line: usize) -> Result<(u64, u32), FlashError> {
    let (addr, len) = s
        .split_once('/')
        .ok_or_else(|| err(line, format!("expected prefix a.b.c.d/len, got {s:?}")))?;
    let len: u32 = len
        .parse()
        .map_err(|_| err(line, format!("bad prefix length in {s:?}")))?;
    if len > 32 {
        return Err(err(line, format!("prefix length {len} > 32")));
    }
    let mut value: u64 = 0;
    let octets: Vec<&str> = addr.split('.').collect();
    if octets.len() != 4 {
        return Err(err(line, format!("expected 4 octets in {addr:?}")));
    }
    for o in octets {
        let b: u64 = o
            .parse()
            .map_err(|_| err(line, format!("bad octet {o:?}")))?;
        if b > 255 {
            return Err(err(line, format!("octet {b} > 255")));
        }
        value = (value << 8) | b;
    }
    Ok((value, len))
}

/// Formats a 32-bit value back into dotted-quad/len (for reports).
pub fn format_prefix(value: u64, len: u32) -> String {
    format!(
        "{}.{}.{}.{}/{}",
        (value >> 24) & 0xFF,
        (value >> 16) & 0xFF,
        (value >> 8) & 0xFF,
        value & 0xFF,
        len
    )
}

/// The shared line-streaming parse core. Each completed `fib` block is
/// flushed to `sink` the moment it ends (next directive or EOF), so only
/// one device's rules are resident at a time; header state (topology,
/// actions, requirements) accumulates normally. Drive it one line at a
/// time — the callers own the line buffer, so the buffered entry points
/// ([`parse_network_header`], [`stream_network_fibs`]) can reuse a single
/// `String` for the whole file instead of allocating one per line.
struct Parser {
    layout: HeaderLayout,
    topo: Topology,
    actions: ActionTable,
    requires: Vec<(usize, String)>,
    current: Option<(DeviceId, Vec<Rule>)>,
    fib_devices: Vec<DeviceId>,
    total_rules: usize,
}

impl Parser {
    fn new() -> Self {
        Parser {
            layout: HeaderLayout::dst_only(),
            topo: Topology::new(),
            actions: ActionTable::new(),
            requires: Vec::new(),
            current: None,
            fib_devices: Vec::new(),
            total_rules: 0,
        }
    }

    fn flush_block<F>(&mut self, sink: &mut F) -> Result<(), FlashError>
    where
        F: FnMut(DeviceId, Vec<Rule>) -> Result<(), FlashError>,
    {
        if let Some((dev, rules)) = self.current.take() {
            self.total_rules += rules.len();
            sink(dev, rules)?;
        }
        Ok(())
    }

    fn line<F>(&mut self, lineno: usize, raw: &str, sink: &mut F) -> Result<(), FlashError>
    where
        F: FnMut(DeviceId, Vec<Rule>) -> Result<(), FlashError>,
    {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(());
        }
        let mut parts = line.split_whitespace();
        let Some(keyword) = parts.next() else {
            // Unreachable (blank lines are filtered above), but a parse
            // error beats a panic if the filtering ever changes.
            return Err(err(lineno, "empty directive"));
        };
        // Any non-rule directive terminates the open fib block.
        if keyword != "fib" && !keyword.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            self.flush_block(sink)?;
        }
        match keyword {
            "node" | "external" => {
                let name = parts
                    .next()
                    .ok_or_else(|| err(lineno, "expected a node name"))?;
                if self.topo.lookup(name).is_some() {
                    return Err(err(lineno, format!("duplicate node {name:?}")));
                }
                let id = if keyword == "external" {
                    self.topo.add_external(name)
                } else {
                    self.topo.add_device(name)
                };
                // Labels: key=value pairs after the name.
                for kv in parts {
                    if let Some((k, v)) = kv.split_once('=') {
                        self.topo.set_label(id, k, v);
                    } else {
                        return Err(err(lineno, format!("expected key=value, got {kv:?}")));
                    }
                }
            }
            "link" => {
                let a = parts
                    .next()
                    .and_then(|n| self.topo.lookup(n))
                    .ok_or_else(|| err(lineno, "unknown link endpoint"))?;
                let b = parts
                    .next()
                    .and_then(|n| self.topo.lookup(n))
                    .ok_or_else(|| err(lineno, "unknown link endpoint"))?;
                self.topo.add_bilink(a, b);
            }
            "fib" => {
                self.flush_block(sink)?;
                let name = parts
                    .next()
                    .ok_or_else(|| err(lineno, "expected a device name"))?;
                let dev = self
                    .topo
                    .lookup(name)
                    .ok_or_else(|| err(lineno, format!("unknown device {name:?}")))?;
                self.fib_devices.push(dev);
                self.current = Some((dev, Vec::new()));
            }
            "require" => {
                self.requires.push((lineno, line.to_string()));
            }
            _ => {
                // Inside a fib block: "prefix priority action".
                let Some((_, rules)) = self.current.as_mut() else {
                    return Err(err(lineno, format!("unexpected directive {keyword:?}")));
                };
                let (value, len) = parse_prefix(keyword, lineno)?;
                let priority: i64 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "expected a priority"))?
                    .parse()
                    .map_err(|_| err(lineno, "bad priority"))?;
                let action_str = parts
                    .next()
                    .ok_or_else(|| err(lineno, "expected an action"))?;
                let action = parse_action(action_str, &self.topo, &mut self.actions, lineno)?;
                rules.push(Rule::new(
                    Match::dst_prefix(&self.layout, value, len),
                    priority,
                    action,
                ));
            }
        }
        Ok(())
    }

    fn finish<F>(mut self, sink: &mut F) -> Result<NetworkHeader, FlashError>
    where
        F: FnMut(DeviceId, Vec<Rule>) -> Result<(), FlashError>,
    {
        self.flush_block(sink)?;
        // Requirements are parsed after the topology so names resolve.
        let mut properties = vec![Property::LoopFreedom];
        for (lineno, line) in &self.requires {
            properties.push(parse_require(line, *lineno, &self.topo, &self.layout)?);
        }
        Ok(NetworkHeader {
            topo: Arc::new(self.topo),
            actions: Arc::new(self.actions),
            layout: self.layout,
            properties,
            fib_devices: self.fib_devices,
            total_rules: self.total_rules,
        })
    }
}

fn parse_lines<I, S, F>(lines: I, sink: &mut F) -> Result<NetworkHeader, FlashError>
where
    I: Iterator<Item = std::io::Result<S>>,
    S: AsRef<str>,
    F: FnMut(DeviceId, Vec<Rule>) -> Result<(), FlashError>,
{
    let mut parser = Parser::new();
    let mut lineno = 0usize;
    for raw in lines {
        lineno += 1;
        let raw = raw.map_err(|e| err(lineno, format!("io: {e}")))?;
        parser.line(lineno, raw.as_ref(), sink)?;
    }
    parser.finish(sink)
}

/// As [`parse_lines`], reading from a `BufRead` through one reused line
/// buffer: the steady-state loop performs no per-line allocation (the
/// `lines()` adapter would allocate a fresh `String` for every line —
/// at 10⁷ rules that is 10⁷ short-lived heap allocations on the hot
/// ingest path).
fn parse_buffered<R, F>(mut reader: R, sink: &mut F) -> Result<NetworkHeader, FlashError>
where
    R: std::io::BufRead,
    F: FnMut(DeviceId, Vec<Rule>) -> Result<(), FlashError>,
{
    let mut parser = Parser::new();
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        lineno += 1;
        if reader
            .read_line(&mut buf)
            .map_err(|e| err(lineno, format!("io: {e}")))?
            == 0
        {
            break;
        }
        parser.line(lineno, &buf, sink)?;
    }
    parser.finish(sink)
}

/// Parses the full network file into memory.
pub fn parse_network(input: &str) -> Result<NetworkFile, FlashError> {
    let mut fibs: Vec<(DeviceId, Vec<Rule>)> = Vec::new();
    let header = parse_lines(input.lines().map(std::io::Result::Ok), &mut |dev, rules| {
        fibs.push((dev, rules));
        Ok(())
    })?;
    Ok(NetworkFile {
        topo: header.topo,
        actions: header.actions,
        layout: header.layout,
        fibs,
        properties: header.properties,
    })
}

/// First pass of the two-pass streaming ingest: parses the topology,
/// actions and requirements, counting rules but dropping their bodies.
/// The returned header carries everything needed to construct a verifier;
/// a second pass over the same input via [`stream_network_fibs`] then
/// feeds the rules through without ever materializing more than one
/// device's FIB.
pub fn parse_network_header(reader: impl std::io::BufRead) -> Result<NetworkHeader, FlashError> {
    parse_buffered(reader, &mut |_, _| Ok(()))
}

/// Second pass of the streaming ingest: re-parses the input, handing each
/// device's rules to `sink` as its `fib` block completes. Parsing is
/// deterministic, so the topology, action ids and device ids seen by the
/// sink agree exactly with the header from [`parse_network_header`] on
/// the same input.
pub fn stream_network_fibs<R, F>(reader: R, mut sink: F) -> Result<NetworkHeader, FlashError>
where
    R: std::io::BufRead,
    F: FnMut(DeviceId, Vec<Rule>) -> Result<(), FlashError>,
{
    parse_buffered(reader, &mut sink)
}

/// Partitioned second pass over one partition of the `fib` blocks.
///
/// Pass 1 ([`parse_network_header`]) already built the complete topology
/// and action table, so a pass-2 reader does not need to re-execute any
/// header directive: it skims the file tracking only `fib` block
/// boundaries (block ordinal `i` is `header.fib_devices[i]` by
/// construction — parsing is deterministic) and fully parses rule lines
/// only inside blocks with `ordinal % parts == part`, resolving actions
/// read-only via [`ActionTable::lookup`]. Rule lines of foreign blocks
/// are skipped after a one-byte classification, which is what makes
/// `parts` readers over the same file genuinely cheaper than `parts`
/// full parses. `sink` receives `(ordinal, device, rules)` for owned
/// blocks, in file order within the partition.
///
/// An action absent from the pass-1 table is a parse error: it means the
/// file changed between the passes.
pub fn stream_network_fibs_partition<R, F>(
    mut reader: R,
    header: &NetworkHeader,
    part: usize,
    parts: usize,
    mut sink: F,
) -> Result<(), FlashError>
where
    R: std::io::BufRead,
    F: FnMut(usize, DeviceId, Vec<Rule>) -> Result<(), FlashError>,
{
    assert!(parts > 0 && part < parts, "partition {part} of {parts}");
    let layout = &header.layout;
    let mut resolver = ActionResolver::new();
    let mut buf = String::new();
    let mut lineno = 0usize;
    // Ordinal of the currently open fib block; usize::MAX before the
    // first one. `open` holds the rules of an *owned* open block.
    let mut ordinal = usize::MAX;
    let mut open: Option<Vec<Rule>> = None;
    loop {
        buf.clear();
        lineno += 1;
        let eof = reader
            .read_line(&mut buf)
            .map_err(|e| err(lineno, format!("io: {e}")))?
            == 0;
        let line = if eof {
            ""
        } else {
            buf.split('#').next().unwrap_or("").trim()
        };
        if !eof && line.is_empty() {
            continue;
        }
        let first = line.as_bytes().first().copied();
        let is_rule = first.is_some_and(|c| c.is_ascii_digit());
        if is_rule {
            let Some(rules) = open.as_mut() else {
                continue; // foreign block: classification only
            };
            let mut parts_iter = line.split_whitespace();
            let prefix = parts_iter
                .next()
                .ok_or_else(|| err(lineno, "expected a prefix"))?;
            let (value, len) = parse_prefix(prefix, lineno)?;
            let priority: i64 = parts_iter
                .next()
                .ok_or_else(|| err(lineno, "expected a priority"))?
                .parse()
                .map_err(|_| err(lineno, "bad priority"))?;
            let action_str = parts_iter
                .next()
                .ok_or_else(|| err(lineno, "expected an action"))?;
            let action =
                resolver.resolve(action_str, &header.topo, &header.actions, lineno)?;
            rules.push(Rule::new(
                Match::dst_prefix(layout, value, len),
                priority,
                action,
            ));
            continue;
        }
        // A directive (or EOF) closes any open block.
        if let Some(rules) = open.take() {
            sink(ordinal, header.fib_devices[ordinal], rules)?;
        }
        if eof {
            return Ok(());
        }
        if line.split_whitespace().next() == Some("fib") {
            ordinal = ordinal.wrapping_add(1);
            if ordinal >= header.fib_devices.len() {
                return Err(err(
                    lineno,
                    "more fib blocks than the pass-1 header (file changed between passes?)",
                ));
            }
            if ordinal % parts == part {
                open = Some(Vec::new());
            }
        }
    }
}

/// Parallel second pass: `threads` reader threads each own the `fib`
/// blocks with `ordinal % threads == t`, re-scan the input via their own
/// reader from `open`, and run `map` on each owned block's rules —
/// parse, action resolution, and any routing work inside `map` for block
/// i+1 all overlap with the caller consuming block i. The caller's
/// `sink` still sees blocks in strict file order: mapped results park in
/// a reorder window bounded to ~2 blocks per reader, which is also the
/// pipeline's backpressure. `threads <= 1` degrades to a sequential
/// single-partition scan. Returns the total rule count streamed.
pub fn stream_network_fibs_parallel<R, O, T, M, F>(
    open: O,
    header: &NetworkHeader,
    threads: usize,
    map: M,
    mut sink: F,
) -> Result<usize, FlashError>
where
    R: std::io::BufRead,
    O: Fn() -> std::io::Result<R> + Sync,
    T: Send,
    M: Fn(DeviceId, Vec<Rule>) -> T + Sync,
    F: FnMut(DeviceId, T) -> Result<(), FlashError>,
{
    let blocks = header.fib_devices.len();
    if threads <= 1 || blocks <= 1 {
        let reader = open().map_err(|e| err(0, format!("io: {e}")))?;
        let mut total = 0usize;
        return stream_network_fibs_partition(reader, header, 0, 1, |_, dev, rules| {
            total += rules.len();
            sink(dev, map(dev, rules))
        })
        .map(|()| total);
    }
    let threads = threads.min(blocks);
    let window = threads * 2;
    let shared = ReorderWindow::<(usize, T)>::new();
    let mut consumed = Ok(0usize);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let shared = &shared;
            let map = &map;
            let open = &open;
            scope.spawn(move || {
                let reader = match open() {
                    Ok(r) => r,
                    Err(e) => {
                        shared.fail(err(0, format!("io: {e}")));
                        return;
                    }
                };
                let r = stream_network_fibs_partition(reader, header, t, threads, |i, dev, rules| {
                    if !shared.wait_for_slot(i, window) {
                        return Err(err(0, "aborted"));
                    }
                    let count = rules.len();
                    shared.publish(i, (count, map(dev, rules)));
                    Ok(())
                });
                if let Err(e) = r {
                    shared.fail(e);
                }
            });
        }
        // Consumer: the caller's thread drains the window in order.
        let mut total = 0usize;
        for (i, &dev) in header.fib_devices.iter().enumerate() {
            match shared.take(i) {
                Ok((count, item)) => {
                    total += count;
                    if let Err(e) = sink(dev, item) {
                        shared.abort();
                        consumed = Err(e);
                        return;
                    }
                }
                Err(e) => {
                    consumed = Err(e);
                    return;
                }
            }
        }
        consumed = Ok(total);
    });
    consumed
}

/// Read-only action resolution for the partitioned pass: hop sets are
/// built in a reused scratch `Forward`, normalized in place, and probed
/// with [`ActionTable::lookup`] — no table mutation, no per-line heap
/// allocation.
struct ActionResolver {
    scratch: flash_netmodel::Action,
}

impl ActionResolver {
    fn new() -> Self {
        ActionResolver {
            scratch: flash_netmodel::Action::Forward(Vec::new()),
        }
    }

    fn resolve(
        &mut self,
        s: &str,
        topo: &Topology,
        actions: &ActionTable,
        lineno: usize,
    ) -> Result<flash_netmodel::ActionId, FlashError> {
        if s == "drop" {
            return Ok(flash_netmodel::ACTION_DROP);
        }
        let flash_netmodel::Action::Forward(hops) = &mut self.scratch else {
            unreachable!()
        };
        hops.clear();
        if let Some(inner) = s.strip_prefix("ecmp(").and_then(|r| r.strip_suffix(')')) {
            for n in inner.split(',') {
                let n = n.trim();
                hops.push(
                    topo.lookup(n)
                        .ok_or_else(|| err(lineno, format!("unknown next hop {n:?}")))?,
                );
            }
            if hops.is_empty() {
                return Err(err(lineno, "empty ecmp() set"));
            }
            hops.sort_unstable();
            hops.dedup();
        } else {
            hops.push(
                topo.lookup(s)
                    .ok_or_else(|| err(lineno, format!("unknown next hop {s:?}")))?,
            );
        }
        actions.lookup(&self.scratch).ok_or_else(|| {
            err(
                lineno,
                "action not in the pass-1 table (file changed between passes?)",
            )
        })
    }
}

/// Bounded reorder window between parallel pass-2 readers and the
/// in-order consumer; slot `i` holds block ordinal `i`'s mapped result
/// until every earlier block has been emitted.
struct ReorderWindow<T> {
    state: std::sync::Mutex<ReorderState<T>>,
    cv: std::sync::Condvar,
}

struct ReorderState<T> {
    slots: std::collections::HashMap<usize, T>,
    next_emit: usize,
    error: Option<FlashError>,
    aborted: bool,
}

impl<T> ReorderWindow<T> {
    fn new() -> Self {
        ReorderWindow {
            state: std::sync::Mutex::new(ReorderState {
                slots: std::collections::HashMap::new(),
                next_emit: 0,
                error: None,
                aborted: false,
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Blocks until ordinal `i` is within `window` of the consumer (the
    /// backpressure bound). Returns false if the pipeline was aborted.
    fn wait_for_slot(&self, i: usize, window: usize) -> bool {
        let mut g = self.state.lock().expect("reorder window poisoned");
        while !g.aborted && g.error.is_none() && i >= g.next_emit + window {
            g = self.cv.wait(g).expect("reorder window poisoned");
        }
        !g.aborted && g.error.is_none()
    }

    fn publish(&self, i: usize, item: T) {
        let mut g = self.state.lock().expect("reorder window poisoned");
        g.slots.insert(i, item);
        self.cv.notify_all();
    }

    fn fail(&self, e: FlashError) {
        let mut g = self.state.lock().expect("reorder window poisoned");
        if g.error.is_none() {
            g.error = Some(e);
        }
        self.cv.notify_all();
    }

    fn abort(&self) {
        let mut g = self.state.lock().expect("reorder window poisoned");
        g.aborted = true;
        self.cv.notify_all();
    }

    fn take(&self, i: usize) -> Result<T, FlashError> {
        let mut g = self.state.lock().expect("reorder window poisoned");
        loop {
            if let Some(e) = g.error.take() {
                g.aborted = true;
                self.cv.notify_all();
                return Err(e);
            }
            if let Some(v) = g.slots.remove(&i) {
                g.next_emit = i + 1;
                self.cv.notify_all();
                return Ok(v);
            }
            g = self.cv.wait(g).expect("reorder window poisoned");
        }
    }
}

fn parse_action(
    s: &str,
    topo: &Topology,
    actions: &mut ActionTable,
    lineno: usize,
) -> Result<flash_netmodel::ActionId, FlashError> {
    if s == "drop" {
        return Ok(flash_netmodel::ACTION_DROP);
    }
    if let Some(inner) = s.strip_prefix("ecmp(").and_then(|r| r.strip_suffix(')')) {
        let mut hops = Vec::new();
        for n in inner.split(',') {
            let d = topo
                .lookup(n.trim())
                .ok_or_else(|| err(lineno, format!("unknown next hop {n:?}")))?;
            hops.push(d);
        }
        if hops.is_empty() {
            return Err(err(lineno, "empty ecmp() set"));
        }
        return Ok(actions.ecmp(hops));
    }
    let d = topo
        .lookup(s)
        .ok_or_else(|| err(lineno, format!("unknown next hop {s:?}")))?;
    Ok(actions.fwd(d))
}

/// `require <name> <prefix> from <src>[,<src>…] path "<expr>"`
/// with the optional keyword `cover` before the prefix.
fn parse_require(
    line: &str,
    lineno: usize,
    topo: &Topology,
    layout: &HeaderLayout,
) -> Result<Property, FlashError> {
    let rest = line
        .strip_prefix("require")
        .ok_or_else(|| err(lineno, "expected a 'require' directive"))?
        .trim();
    let mut parts = rest.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| err(lineno, "expected a requirement name"))?;
    let mut next = parts
        .next()
        .ok_or_else(|| err(lineno, "expected a prefix"))?;
    let cover = next == "cover";
    if cover {
        next = parts
            .next()
            .ok_or_else(|| err(lineno, "expected a prefix after 'cover'"))?;
    }
    let (value, len) = parse_prefix(next, lineno)?;
    match parts.next() {
        Some("from") => {}
        other => return Err(err(lineno, format!("expected 'from', got {other:?}"))),
    }
    let srcs_str = parts
        .next()
        .ok_or_else(|| err(lineno, "expected source device(s)"))?;
    let mut sources = Vec::new();
    for s in srcs_str.split(',') {
        sources.push(
            topo.lookup(s.trim())
                .ok_or_else(|| err(lineno, format!("unknown source {s:?}")))?,
        );
    }
    match parts.next() {
        Some("path") => {}
        other => return Err(err(lineno, format!("expected 'path', got {other:?}"))),
    }
    // The expression is the quoted remainder of the line. Split on the
    // standalone keyword (" path ") so device names containing "path"
    // don't truncate the line.
    let expr_str = line
        .split_once(" path ")
        .map(|(_, e)| e.trim().trim_matches('"'))
        .filter(|e| !e.is_empty())
        .ok_or_else(|| err(lineno, "expected a quoted path expression"))?;
    let expr = parse_path_expr(expr_str)
        .map_err(|e| err(lineno, format!("bad path expression: {e}")))?;
    let mut requirement = Requirement::new(
        name,
        Match::dst_prefix(layout, value, len),
        sources,
        expr,
    );
    if cover {
        requirement = requirement.with_cover();
    }
    Ok(Property::Requirement {
        requirement,
        dests: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Figure-2-style network
node s1 tier=edge
node s2
node s3
external a
external gw
link s1 s2
link s2 s3
link s1 s3
link s1 a
link s3 gw

fib s1
  10.0.1.0/24 2 a
  10.0.2.0/24 1 a
  0.0.0.0/0   0 s3

fib s2
  0.0.0.0/0 0 s1

fib s3
  10.0.1.0/24 2 s1
  10.0.2.0/24 1 ecmp(s1,s2)
  0.0.0.0/0   0 gw

require http-detour 10.0.1.0/24 from s3 path "s3 .* s1 a"
"#;

    #[test]
    fn parse_prefix_roundtrip() {
        let (v, l) = parse_prefix("10.0.1.0/24", 1).unwrap();
        assert_eq!(v, 0x0A000100);
        assert_eq!(l, 24);
        assert_eq!(format_prefix(v, l), "10.0.1.0/24");
        let (v, l) = parse_prefix("0.0.0.0/0", 1).unwrap();
        assert_eq!((v, l), (0, 0));
    }

    #[test]
    fn parse_prefix_errors() {
        assert!(parse_prefix("10.0.1.0", 1).is_err());
        assert!(parse_prefix("10.0.1/24", 1).is_err());
        assert!(parse_prefix("10.0.1.0/33", 1).is_err());
        assert!(parse_prefix("10.0.1.999/24", 1).is_err());
    }

    #[test]
    fn parse_sample_network() {
        let net = parse_network(SAMPLE).unwrap();
        assert_eq!(net.topo.device_count(), 5);
        assert_eq!(net.fibs.len(), 3);
        assert_eq!(net.fibs[0].1.len(), 3);
        // labels survive
        let s1 = net.topo.lookup("s1").unwrap();
        assert_eq!(net.topo.label(s1, "tier"), Some("edge"));
        // ECMP action resolved
        let s3_rules = &net.fibs[2].1;
        let ecmp_rule = &s3_rules[1];
        assert_eq!(net.actions.next_hops(ecmp_rule.action).len(), 2);
        // loop-freedom + 1 requirement
        assert_eq!(net.properties.len(), 2);
    }

    #[test]
    fn streaming_parse_agrees_with_batch() {
        let net = parse_network(SAMPLE).unwrap();
        // Pass 1: header only.
        let header = parse_network_header(std::io::Cursor::new(SAMPLE)).unwrap();
        assert_eq!(header.topo.device_count(), net.topo.device_count());
        assert_eq!(header.total_rules, net.fibs.iter().map(|(_, r)| r.len()).sum::<usize>());
        assert_eq!(
            header.fib_devices,
            net.fibs.iter().map(|(d, _)| *d).collect::<Vec<_>>()
        );
        assert_eq!(header.properties.len(), net.properties.len());
        // Pass 2: streamed blocks arrive in file order with identical rules.
        let mut streamed = Vec::new();
        stream_network_fibs(std::io::Cursor::new(SAMPLE), |dev, rules| {
            streamed.push((dev, rules));
            Ok(())
        })
        .unwrap();
        assert_eq!(streamed, net.fibs);
    }

    #[test]
    fn partitioned_pass_matches_batch() {
        let net = parse_network(SAMPLE).unwrap();
        let header = parse_network_header(std::io::Cursor::new(SAMPLE)).unwrap();
        for parts in [1usize, 2, 3] {
            let mut got: Vec<(usize, DeviceId, Vec<Rule>)> = Vec::new();
            for part in 0..parts {
                stream_network_fibs_partition(
                    std::io::Cursor::new(SAMPLE),
                    &header,
                    part,
                    parts,
                    |i, dev, rules| {
                        got.push((i, dev, rules));
                        Ok(())
                    },
                )
                .unwrap();
            }
            got.sort_by_key(|(i, _, _)| *i);
            let flat: Vec<(DeviceId, Vec<Rule>)> =
                got.into_iter().map(|(_, d, r)| (d, r)).collect();
            assert_eq!(flat, net.fibs, "{parts} partitions");
        }
    }

    #[test]
    fn parallel_pass_matches_batch_in_order() {
        let net = parse_network(SAMPLE).unwrap();
        let header = parse_network_header(std::io::Cursor::new(SAMPLE)).unwrap();
        for threads in [1usize, 2, 4] {
            let mut got: Vec<(DeviceId, Vec<Rule>)> = Vec::new();
            let total = stream_network_fibs_parallel(
                || Ok(std::io::Cursor::new(SAMPLE)),
                &header,
                threads,
                |_, rules| rules,
                |dev, rules| {
                    got.push((dev, rules));
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(total, header.total_rules, "{threads} threads");
            assert_eq!(got, net.fibs, "{threads} threads: file order preserved");
        }
    }

    #[test]
    fn partitioned_pass_rejects_stale_table() {
        // An action table from a *different* file misses lookups.
        let header = parse_network_header(std::io::Cursor::new(SAMPLE)).unwrap();
        let stale = NetworkHeader {
            topo: header.topo.clone(),
            actions: Arc::new(ActionTable::new()),
            layout: header.layout.clone(),
            properties: vec![],
            fib_devices: header.fib_devices.clone(),
            total_rules: header.total_rules,
        };
        let e = stream_network_fibs_partition(
            std::io::Cursor::new(SAMPLE),
            &stale,
            0,
            1,
            |_, _, _| Ok(()),
        )
        .unwrap_err();
        assert!(e.to_string().contains("pass-1"), "{e}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "node a\nlink a b\n";
        let e = parse_network(bad).unwrap_err();
        assert_eq!(e.parse_line(), Some(2));
        let bad = "fib nowhere\n";
        let e = parse_network(bad).unwrap_err();
        assert_eq!(e.parse_line(), Some(1));
        let bad = "node a\nnode a\n";
        let e = parse_network(bad).unwrap_err();
        assert_eq!(e.parse_line(), Some(2));
        let bad = "10.0.0.0/8 1 x\n";
        let e = parse_network(bad).unwrap_err();
        assert_eq!(e.parse_line(), Some(1));
        assert!(matches!(e, crate::error::FlashError::Parse { .. }));
        assert!(e.to_string().starts_with("line 1:"));
    }

    #[test]
    fn cover_requirement_parses() {
        let src = "node a\nnode b\nlink a b\nrequire r cover 10.0.0.0/8 from a path \"a b\"\n";
        let net = parse_network(src).unwrap();
        match &net.properties[1] {
            Property::Requirement { requirement, .. } => assert!(requirement.cover),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn end_to_end_verification_of_sample() {
        use crate::verifier::{SubspaceVerifier, SubspaceVerifierConfig};
        let net = parse_network(SAMPLE).unwrap();
        let mut v = SubspaceVerifier::new(SubspaceVerifierConfig {
            topo: net.topo.clone(),
            actions: net.actions.clone(),
            layout: net.layout.clone(),
            subspace: flash_imt::SubspaceSpec::whole(),
            bst: usize::MAX,
            properties: net.properties.clone(),
            tuning: flash_imt::ImtTuning::default(),
            gc_node_threshold: flash_bdd::DEFAULT_GC_NODE_THRESHOLD,
            cache: flash_bdd::CacheConfig::default(),
        });
        let mut reports = Vec::new();
        for (dev, rules) in &net.fibs {
            let updates = rules
                .iter()
                .cloned()
                .map(flash_netmodel::RuleUpdate::insert)
                .collect();
            reports.extend(v.ingest_synchronized(*dev, updates));
        }
        // The sample routes 10.0.1.0/24 from s3 via s1 to a: satisfied.
        assert!(reports.iter().any(|r| matches!(
            r,
            crate::verifier::PropertyReport::Satisfied { requirement } if requirement == "http-detour"
        )), "{reports:?}");
        assert!(!reports
            .iter()
            .any(|r| matches!(r, crate::verifier::PropertyReport::LoopFound { .. })));
    }
}
