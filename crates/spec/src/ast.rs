//! Abstract syntax of path requirements.

use flash_netmodel::{DeviceId, Match, Topology};

/// How a label selector compares the label value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelOp {
    /// Exact equality.
    Equals,
    /// Substring containment.
    Contains,
}

/// A selector for a single hop (one device on the path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HopSel {
    /// A device named exactly (e.g. `chic`).
    Id(String),
    /// Any device (`.`).
    Any,
    /// A device carrying a label satisfying the condition
    /// (e.g. `[tier=tor]`). The device *name* can be selected with the
    /// pseudo-key `name`.
    Label {
        key: String,
        op: LabelOp,
        value: String,
    },
    /// A packet-destination device (`>`): resolved against the set of
    /// destination devices supplied when the verification graph is built.
    Dest,
}

impl HopSel {
    /// Does this selector accept device `dev`?
    ///
    /// `dests` is the resolved set of packet-destination devices for the
    /// requirement being checked (used by [`HopSel::Dest`]).
    pub fn matches(&self, topo: &Topology, dev: DeviceId, dests: &[DeviceId]) -> bool {
        match self {
            HopSel::Any => true,
            HopSel::Id(name) => topo.name(dev) == name,
            HopSel::Dest => dests.contains(&dev),
            HopSel::Label { key, op, value } => {
                let actual = if key == "name" {
                    Some(topo.name(dev))
                } else {
                    topo.label(dev, key)
                };
                match (actual, op) {
                    (Some(a), LabelOp::Equals) => a == value,
                    (Some(a), LabelOp::Contains) => a.contains(value.as_str()),
                    (None, _) => false,
                }
            }
        }
    }
}

/// A path regular expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathExpr {
    /// A single hop.
    Hop(HopSel),
    /// Concatenation.
    Concat(Vec<PathExpr>),
    /// Alternation.
    Alt(Vec<PathExpr>),
    /// Zero or more repetitions.
    Star(Box<PathExpr>),
    /// One or more repetitions.
    Plus(Box<PathExpr>),
    /// Zero or one occurrence.
    Optional(Box<PathExpr>),
    /// The empty path (epsilon); produced by anchors.
    Epsilon,
}

impl PathExpr {
    /// Convenience: a single named hop.
    pub fn id(name: &str) -> Self {
        PathExpr::Hop(HopSel::Id(name.to_string()))
    }

    /// Convenience: `.`.
    pub fn any() -> Self {
        PathExpr::Hop(HopSel::Any)
    }

    /// Convenience: `.*`.
    pub fn any_star() -> Self {
        PathExpr::Star(Box::new(Self::any()))
    }
}

/// A full verification requirement (Appendix B):
/// `(packet_space, sources, path_set)`.
#[derive(Clone, Debug)]
pub struct Requirement {
    /// Human-readable name used in reports.
    pub name: String,
    /// The packet space the requirement constrains.
    pub packet_space: Match,
    /// Entry devices.
    pub sources: Vec<DeviceId>,
    /// The path set as a regular expression.
    pub expr: PathExpr,
    /// `cover` semantics: *all* matching paths must be present (e.g. "all
    /// redundant shortest paths should be available"), instead of at least
    /// one.
    pub cover: bool,
}

impl Requirement {
    pub fn new(
        name: impl Into<String>,
        packet_space: Match,
        sources: Vec<DeviceId>,
        expr: PathExpr,
    ) -> Self {
        Requirement {
            name: name.into(),
            packet_space,
            sources,
            expr,
            cover: false,
        }
    }

    pub fn with_cover(mut self) -> Self {
        self.cover = true;
        self
    }
}
