//! Thompson construction from [`PathExpr`] to an NFA over hop selectors.
//!
//! The verification graph of §4.2 is the cross product of the network
//! graph and this automaton: a network path `d0 d1 … dk` is compliant when
//! the NFA accepts the device sequence, with each transition's [`HopSel`]
//! resolved against the topology.

use crate::ast::{HopSel, PathExpr};
use flash_netmodel::{DeviceId, Topology};

/// NFA state index.
pub type StateId = u32;

/// A nondeterministic finite automaton over hop selectors.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// `eps[s]` — epsilon successors of state `s`.
    eps: Vec<Vec<StateId>>,
    /// `trans[s]` — labeled transitions `(selector index, target)`.
    trans: Vec<Vec<(u32, StateId)>>,
    /// Interned selectors referenced by transitions.
    selectors: Vec<HopSel>,
    start: StateId,
    accept: StateId,
}

impl Nfa {
    /// Compiles a path expression.
    pub fn compile(expr: &PathExpr) -> Nfa {
        let mut b = Builder {
            eps: Vec::new(),
            trans: Vec::new(),
            selectors: Vec::new(),
        };
        let (start, accept) = b.build(expr);
        Nfa {
            eps: b.eps,
            trans: b.trans,
            selectors: b.selectors,
            start,
            accept,
        }
    }

    pub fn state_count(&self) -> usize {
        self.eps.len()
    }

    pub fn start(&self) -> StateId {
        self.start
    }

    pub fn accept(&self) -> StateId {
        self.accept
    }

    pub fn selectors(&self) -> &[HopSel] {
        &self.selectors
    }

    /// Epsilon closure of a set of states (returned sorted + deduplicated).
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.eps.len()];
        let mut stack: Vec<StateId> = Vec::new();
        for &s in states {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// One step of the subset construction: from the closed state set
    /// `from`, consume device `dev` and return the closed successor set.
    pub fn step(
        &self,
        from: &[StateId],
        topo: &Topology,
        dev: DeviceId,
        dests: &[DeviceId],
    ) -> Vec<StateId> {
        let mut moved: Vec<StateId> = Vec::new();
        for &s in from {
            for &(sel, t) in &self.trans[s as usize] {
                if self.selectors[sel as usize].matches(topo, dev, dests) {
                    moved.push(t);
                }
            }
        }
        moved.sort_unstable();
        moved.dedup();
        self.eps_closure(&moved)
    }

    /// Whether a closed state set is accepting.
    pub fn is_accepting(&self, states: &[StateId]) -> bool {
        states.binary_search(&self.accept).is_ok()
    }

    /// Full-path acceptance test (reference semantics for tests and the
    /// model-traversal baseline): does the device sequence match?
    pub fn accepts(&self, topo: &Topology, path: &[DeviceId], dests: &[DeviceId]) -> bool {
        let mut cur = self.eps_closure(&[self.start]);
        for &d in path {
            cur = self.step(&cur, topo, d, dests);
            if cur.is_empty() {
                return false;
            }
        }
        self.is_accepting(&cur)
    }
}

struct Builder {
    eps: Vec<Vec<StateId>>,
    trans: Vec<Vec<(u32, StateId)>>,
    selectors: Vec<HopSel>,
}

impl Builder {
    fn state(&mut self) -> StateId {
        let id = self.eps.len() as StateId;
        self.eps.push(Vec::new());
        self.trans.push(Vec::new());
        id
    }

    fn selector(&mut self, sel: &HopSel) -> u32 {
        if let Some(i) = self.selectors.iter().position(|s| s == sel) {
            return i as u32;
        }
        self.selectors.push(sel.clone());
        (self.selectors.len() - 1) as u32
    }

    fn build(&mut self, e: &PathExpr) -> (StateId, StateId) {
        match e {
            PathExpr::Epsilon => {
                let s = self.state();
                let t = self.state();
                self.eps[s as usize].push(t);
                (s, t)
            }
            PathExpr::Hop(sel) => {
                let s = self.state();
                let t = self.state();
                let si = self.selector(sel);
                self.trans[s as usize].push((si, t));
                (s, t)
            }
            PathExpr::Concat(items) => {
                let mut cur: Option<(StateId, StateId)> = None;
                for item in items {
                    let (s, t) = self.build(item);
                    cur = Some(match cur {
                        None => (s, t),
                        Some((cs, ct)) => {
                            self.eps[ct as usize].push(s);
                            (cs, t)
                        }
                    });
                }
                cur.unwrap_or_else(|| {
                    let s = self.state();
                    let t = self.state();
                    self.eps[s as usize].push(t);
                    (s, t)
                })
            }
            PathExpr::Alt(items) => {
                let s = self.state();
                let t = self.state();
                for item in items {
                    let (is, it) = self.build(item);
                    self.eps[s as usize].push(is);
                    self.eps[it as usize].push(t);
                }
                (s, t)
            }
            PathExpr::Star(inner) => {
                let s = self.state();
                let t = self.state();
                let (is, it) = self.build(inner);
                self.eps[s as usize].push(is);
                self.eps[s as usize].push(t);
                self.eps[it as usize].push(is);
                self.eps[it as usize].push(t);
                (s, t)
            }
            PathExpr::Plus(inner) => {
                // X+ = X X*
                let first = self.build(inner);
                let star = self.build(&PathExpr::Star(inner.clone()));
                self.eps[first.1 as usize].push(star.0);
                (first.0, star.1)
            }
            PathExpr::Optional(inner) => {
                let s = self.state();
                let t = self.state();
                let (is, it) = self.build(inner);
                self.eps[s as usize].push(is);
                self.eps[s as usize].push(t);
                self.eps[it as usize].push(t);
                (s, t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path_expr;

    fn topo() -> (Topology, Vec<DeviceId>) {
        let mut t = Topology::new();
        let names = ["S", "A", "B", "W", "Y", "C", "D", "E"];
        let ids: Vec<DeviceId> = names.iter().map(|n| t.add_device(*n)).collect();
        (t, ids)
    }

    fn dev(t: &Topology, name: &str) -> DeviceId {
        t.lookup(name).unwrap()
    }

    fn path(t: &Topology, names: &[&str]) -> Vec<DeviceId> {
        names.iter().map(|n| dev(t, n)).collect()
    }

    #[test]
    fn figure3_requirement_acceptance() {
        let (t, _) = topo();
        let nfa = Nfa::compile(&parse_path_expr("S .* [W|Y] .* D").unwrap());
        assert!(nfa.accepts(&t, &path(&t, &["S", "A", "W", "C", "D"]), &[]));
        assert!(nfa.accepts(&t, &path(&t, &["S", "Y", "D"]), &[]));
        assert!(!nfa.accepts(&t, &path(&t, &["S", "A", "C", "D"]), &[]), "no waypoint");
        assert!(!nfa.accepts(&t, &path(&t, &["A", "W", "D"]), &[]), "wrong source");
        assert!(!nfa.accepts(&t, &path(&t, &["S", "W"]), &[]), "no destination");
    }

    #[test]
    fn star_matches_empty() {
        let (t, _) = topo();
        let nfa = Nfa::compile(&parse_path_expr("S .* D").unwrap());
        assert!(nfa.accepts(&t, &path(&t, &["S", "D"]), &[]));
        assert!(nfa.accepts(&t, &path(&t, &["S", "A", "B", "D"]), &[]));
    }

    #[test]
    fn plus_requires_one() {
        let (t, _) = topo();
        let nfa = Nfa::compile(&parse_path_expr("S .+ D").unwrap());
        assert!(!nfa.accepts(&t, &path(&t, &["S", "D"]), &[]));
        assert!(nfa.accepts(&t, &path(&t, &["S", "A", "D"]), &[]));
    }

    #[test]
    fn optional() {
        let (t, _) = topo();
        let nfa = Nfa::compile(&parse_path_expr("S A? D").unwrap());
        assert!(nfa.accepts(&t, &path(&t, &["S", "D"]), &[]));
        assert!(nfa.accepts(&t, &path(&t, &["S", "A", "D"]), &[]));
        assert!(!nfa.accepts(&t, &path(&t, &["S", "B", "D"]), &[]));
    }

    #[test]
    fn dest_selector() {
        let (t, _) = topo();
        let nfa = Nfa::compile(&parse_path_expr("S .* >").unwrap());
        let dests = vec![dev(&t, "D"), dev(&t, "E")];
        assert!(nfa.accepts(&t, &path(&t, &["S", "A", "D"]), &dests));
        assert!(nfa.accepts(&t, &path(&t, &["S", "E"]), &dests));
        assert!(!nfa.accepts(&t, &path(&t, &["S", "A", "B"]), &dests));
    }

    #[test]
    fn label_selector_in_automaton() {
        let mut t = Topology::new();
        let s = t.add_device("s");
        let m = t.add_device("mid");
        let d = t.add_device("d");
        t.set_label(m, "tier", "agg");
        let nfa = Nfa::compile(&parse_path_expr("s [tier=agg] d").unwrap());
        assert!(nfa.accepts(&t, &[s, m, d], &[]));
        assert!(!nfa.accepts(&t, &[s, d], &[]));
        let _ = (s, m, d);
    }

    #[test]
    fn alternation_of_sequences() {
        let (t, _) = topo();
        let nfa = Nfa::compile(&parse_path_expr("(S A | S B) D").unwrap());
        assert!(nfa.accepts(&t, &path(&t, &["S", "A", "D"]), &[]));
        assert!(nfa.accepts(&t, &path(&t, &["S", "B", "D"]), &[]));
        assert!(!nfa.accepts(&t, &path(&t, &["S", "W", "D"]), &[]));
    }

    #[test]
    fn empty_path_and_epsilon() {
        let (t, _) = topo();
        let nfa = Nfa::compile(&PathExpr::Epsilon);
        assert!(nfa.accepts(&t, &[], &[]));
        let nfa2 = Nfa::compile(&parse_path_expr("S").unwrap());
        assert!(!nfa2.accepts(&t, &[], &[]));
    }

    #[test]
    fn step_is_incremental_acceptance() {
        let (t, _) = topo();
        let nfa = Nfa::compile(&parse_path_expr("S .* D").unwrap());
        let mut cur = nfa.eps_closure(&[nfa.start()]);
        for name in ["S", "A", "B"] {
            cur = nfa.step(&cur, &t, dev(&t, name), &[]);
            assert!(!cur.is_empty());
            assert!(!nfa.is_accepting(&cur));
        }
        cur = nfa.step(&cur, &t, dev(&t, "D"), &[]);
        assert!(nfa.is_accepting(&cur));
    }
}
