//! A recursive-descent parser for path regular expressions.

use crate::ast::{HopSel, LabelOp, PathExpr};

/// A parse failure with a position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Dot,
    Star,
    Plus,
    Question,
    Pipe,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Caret,
    Dollar,
    Gt,
    Equals,
    Contains,
    Str(String),
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '.' => {
                out.push((i, Tok::Dot));
                i += 1;
            }
            '*' => {
                out.push((i, Tok::Star));
                i += 1;
            }
            '+' => {
                out.push((i, Tok::Plus));
                i += 1;
            }
            '?' => {
                out.push((i, Tok::Question));
                i += 1;
            }
            '|' => {
                out.push((i, Tok::Pipe));
                i += 1;
            }
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            '[' => {
                out.push((i, Tok::LBracket));
                i += 1;
            }
            ']' => {
                out.push((i, Tok::RBracket));
                i += 1;
            }
            '^' => {
                out.push((i, Tok::Caret));
                i += 1;
            }
            '$' => {
                out.push((i, Tok::Dollar));
                i += 1;
            }
            '>' => {
                out.push((i, Tok::Gt));
                i += 1;
            }
            '=' => {
                out.push((i, Tok::Equals));
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != '"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        pos: i,
                        message: "unterminated string".into(),
                    });
                }
                out.push((i, Tok::Str(input[start..j].to_string())));
                i = j + 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '/' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' || cj == '-' || cj == '/' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..j];
                if word == "contains" {
                    out.push((start, Tok::Contains));
                } else {
                    out.push((start, Tok::Ident(word.to_string())));
                }
                i = j;
            }
            other => {
                return Err(ParseError {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(usize::MAX)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.here(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            other => Err(ParseError {
                pos: self.here(),
                message: format!("expected {want:?}, found {other:?}"),
            }),
        }
    }

    /// expr := seq ('|' seq)*
    fn expr(&mut self) -> Result<PathExpr, ParseError> {
        let mut alts = vec![self.seq()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.next();
            alts.push(self.seq()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().unwrap()
        } else {
            PathExpr::Alt(alts)
        })
    }

    /// seq := item+
    fn seq(&mut self) -> Result<PathExpr, ParseError> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Pipe) | Some(Tok::RParen) | Some(Tok::RBracket) | None => break,
                _ => items.push(self.item()?),
            }
        }
        // Drop epsilons produced by anchors.
        items.retain(|e| *e != PathExpr::Epsilon);
        Ok(match items.len() {
            0 => PathExpr::Epsilon,
            1 => items.pop().unwrap(),
            _ => PathExpr::Concat(items),
        })
    }

    /// item := atom ('*' | '+' | '?')?
    fn item(&mut self) -> Result<PathExpr, ParseError> {
        let atom = self.atom()?;
        Ok(match self.peek() {
            Some(Tok::Star) => {
                self.next();
                PathExpr::Star(Box::new(atom))
            }
            Some(Tok::Plus) => {
                self.next();
                PathExpr::Plus(Box::new(atom))
            }
            Some(Tok::Question) => {
                self.next();
                PathExpr::Optional(Box::new(atom))
            }
            _ => atom,
        })
    }

    fn atom(&mut self) -> Result<PathExpr, ParseError> {
        match self.next() {
            Some(Tok::Ident(name)) => Ok(PathExpr::Hop(HopSel::Id(name))),
            Some(Tok::Dot) => Ok(PathExpr::Hop(HopSel::Any)),
            Some(Tok::Gt) => Ok(PathExpr::Hop(HopSel::Dest)),
            Some(Tok::Caret) | Some(Tok::Dollar) => Ok(PathExpr::Epsilon),
            Some(Tok::LParen) => {
                let inner = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::LBracket) => self.bracket(),
            other => Err(ParseError {
                pos: self.here(),
                message: format!("expected an atom, found {other:?}"),
            }),
        }
    }

    /// bracket := ident ('|' ident)* | key ('='|'contains') value
    fn bracket(&mut self) -> Result<PathExpr, ParseError> {
        let first = match self.next() {
            Some(Tok::Ident(w)) => w,
            other => {
                return Err(ParseError {
                    pos: self.here(),
                    message: format!("expected identifier inside [], found {other:?}"),
                })
            }
        };
        match self.peek() {
            Some(Tok::Equals) | Some(Tok::Contains) => {
                let op = match self.next() {
                    Some(Tok::Equals) => LabelOp::Equals,
                    Some(Tok::Contains) => LabelOp::Contains,
                    _ => unreachable!(),
                };
                let value = match self.next() {
                    Some(Tok::Ident(w)) => w,
                    Some(Tok::Str(s)) => s,
                    other => {
                        return Err(ParseError {
                            pos: self.here(),
                            message: format!("expected a value, found {other:?}"),
                        })
                    }
                };
                self.expect(Tok::RBracket)?;
                Ok(PathExpr::Hop(HopSel::Label {
                    key: first,
                    op,
                    value,
                }))
            }
            _ => {
                let mut names = vec![first];
                while self.peek() == Some(&Tok::Pipe) {
                    self.next();
                    match self.next() {
                        Some(Tok::Ident(w)) => names.push(w),
                        other => {
                            return Err(ParseError {
                                pos: self.here(),
                                message: format!("expected identifier after |, found {other:?}"),
                            })
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(PathExpr::Alt(
                    names
                        .into_iter()
                        .map(|n| PathExpr::Hop(HopSel::Id(n)))
                        .collect(),
                ))
            }
        }
    }
}

/// Parses a path regular expression such as `S .* [W|Y] .* D`.
pub fn parse_path_expr(input: &str) -> Result<PathExpr, ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing tokens"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{HopSel, LabelOp, PathExpr};

    #[test]
    fn figure3_expression() {
        // S .* [W|Y] .* D
        let e = parse_path_expr("S .* [W|Y] .* D").unwrap();
        match e {
            PathExpr::Concat(items) => {
                assert_eq!(items.len(), 5);
                assert_eq!(items[0], PathExpr::id("S"));
                assert!(matches!(items[1], PathExpr::Star(_)));
                assert!(matches!(items[2], PathExpr::Alt(_)));
                assert_eq!(items[4], PathExpr::id("D"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anchors_are_ignored() {
        let a = parse_path_expr("^ S .* > $").unwrap();
        let b = parse_path_expr("S .* >").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn label_selectors() {
        let e = parse_path_expr("[tier=tor] .* [name contains agg]").unwrap();
        match e {
            PathExpr::Concat(items) => {
                assert_eq!(
                    items[0],
                    PathExpr::Hop(HopSel::Label {
                        key: "tier".into(),
                        op: LabelOp::Equals,
                        value: "tor".into()
                    })
                );
                assert_eq!(
                    items[2],
                    PathExpr::Hop(HopSel::Label {
                        key: "name".into(),
                        op: LabelOp::Contains,
                        value: "agg".into()
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quoted_values() {
        let e = parse_path_expr("[pod=\"3\"]").unwrap();
        assert_eq!(
            e,
            PathExpr::Hop(HopSel::Label {
                key: "pod".into(),
                op: LabelOp::Equals,
                value: "3".into()
            })
        );
    }

    #[test]
    fn alternation_and_grouping() {
        let e = parse_path_expr("(A B | C) D").unwrap();
        match e {
            PathExpr::Concat(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[0], PathExpr::Alt(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn postfix_operators() {
        assert!(matches!(parse_path_expr("A+").unwrap(), PathExpr::Plus(_)));
        assert!(matches!(
            parse_path_expr("A?").unwrap(),
            PathExpr::Optional(_)
        ));
        assert!(matches!(parse_path_expr(".*").unwrap(), PathExpr::Star(_)));
    }

    #[test]
    fn errors_reported() {
        assert!(parse_path_expr("(A").is_err());
        assert!(parse_path_expr("[").is_err());
        assert!(parse_path_expr("A ) B").is_err());
        assert!(parse_path_expr("[\"unterminated").is_err());
        assert!(parse_path_expr("{").is_err());
    }

    #[test]
    fn hyphenated_and_slash_names() {
        let e = parse_path_expr("tor-0/1").unwrap();
        assert_eq!(e, PathExpr::id("tor-0/1"));
    }

    #[test]
    fn empty_input_is_epsilon() {
        assert_eq!(parse_path_expr("").unwrap(), PathExpr::Epsilon);
        assert_eq!(parse_path_expr("^ $").unwrap(), PathExpr::Epsilon);
    }
}
