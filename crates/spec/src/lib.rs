//! The declarative requirement specification language of Flash
//! (Appendix B of the paper) and its compilation to an NFA.
//!
//! A requirement is a tuple `(packet_space, sources, path_set)`: every
//! packet in `packet_space` entering the network at any device in
//! `sources` must be forwarded along at least one device sequence matching
//! the path regular expression (or along *all* matching paths when the
//! `cover` keyword is used).
//!
//! The expression grammar supported here:
//!
//! ```text
//! expr    := seq ('|' seq)*
//! seq     := item+
//! item    := atom ('*' | '+' | '?')?
//! atom    := IDENT            # a device by name
//!          | '.'              # any device
//!          | '>'              # a packet-destination device
//!          | '^' | '$'        # anchors (accepted, implicit)
//!          | '(' expr ')'
//!          | '[' alt ']'      # [W|Y]   — one of several devices
//!          | '[' cond ']'     # [tier=tor], [name contains "agg"]
//! cond    := key ('=' | 'contains') value
//! ```
//!
//! Example from Figure 3 of the paper: `S .* [W|Y] .* D`.

pub mod ast;
pub mod nfa;
pub mod parser;

pub use ast::{HopSel, LabelOp, PathExpr, Requirement};
pub use nfa::{Nfa, StateId};
pub use parser::{parse_path_expr, ParseError};
