//! Property tests: the Thompson NFA must agree with a direct backtracking
//! interpreter of the path-expression AST on arbitrary expressions and
//! paths.

#![cfg(feature = "proptest")]

use flash_netmodel::{DeviceId, Topology};
use flash_spec::{HopSel, Nfa, PathExpr};
use proptest::prelude::*;

const DEVICES: u32 = 5;

fn topo() -> Topology {
    let mut t = Topology::new();
    for i in 0..DEVICES {
        t.add_device(format!("d{i}"));
    }
    t
}

/// Reference semantics: does `expr` match `path[i..]` exactly, consuming
/// all of it? Classic backtracking with a continuation index set.
fn matches_ref(expr: &PathExpr, topo: &Topology, path: &[DeviceId], dests: &[DeviceId]) -> bool {
    fn go(
        e: &PathExpr,
        topo: &Topology,
        path: &[DeviceId],
        i: usize,
        dests: &[DeviceId],
        k: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match e {
            PathExpr::Epsilon => k(i),
            PathExpr::Hop(sel) => {
                if i < path.len() && sel.matches(topo, path[i], dests) {
                    k(i + 1)
                } else {
                    false
                }
            }
            PathExpr::Concat(items) => {
                fn chain(
                    items: &[PathExpr],
                    topo: &Topology,
                    path: &[DeviceId],
                    i: usize,
                    dests: &[DeviceId],
                    k: &mut dyn FnMut(usize) -> bool,
                ) -> bool {
                    match items.split_first() {
                        None => k(i),
                        Some((first, rest)) => go(first, topo, path, i, dests, &mut |j| {
                            chain(rest, topo, path, j, dests, k)
                        }),
                    }
                }
                chain(items, topo, path, i, dests, k)
            }
            PathExpr::Alt(items) => items.iter().any(|it| go(it, topo, path, i, dests, k)),
            PathExpr::Star(inner) => {
                // zero or more; bound the unrolling by the path length.
                fn star(
                    inner: &PathExpr,
                    topo: &Topology,
                    path: &[DeviceId],
                    i: usize,
                    dests: &[DeviceId],
                    depth: usize,
                    k: &mut dyn FnMut(usize) -> bool,
                ) -> bool {
                    if k(i) {
                        return true;
                    }
                    if depth > path.len() {
                        return false;
                    }
                    go(inner, topo, path, i, dests, &mut |j| {
                        j > i && star(inner, topo, path, j, dests, depth + 1, k)
                    })
                }
                star(inner, topo, path, i, dests, 0, k)
            }
            PathExpr::Plus(inner) => go(inner, topo, path, i, dests, &mut |j| {
                go(&PathExpr::Star(inner.clone()), topo, path, j, dests, k)
            }),
            PathExpr::Optional(inner) => k(i) || go(inner, topo, path, i, dests, k),
        }
    }
    go(expr, topo, path, 0, dests, &mut |i| i == path.len())
}

fn arb_sel() -> impl Strategy<Value = HopSel> {
    prop_oneof![
        (0..DEVICES).prop_map(|i| HopSel::Id(format!("d{i}"))),
        Just(HopSel::Any),
        Just(HopSel::Dest),
    ]
}

fn arb_expr() -> impl Strategy<Value = PathExpr> {
    let leaf = prop_oneof![arb_sel().prop_map(PathExpr::Hop), Just(PathExpr::Epsilon)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(PathExpr::Concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(PathExpr::Alt),
            inner.clone().prop_map(|e| PathExpr::Star(Box::new(e))),
            inner.clone().prop_map(|e| PathExpr::Plus(Box::new(e))),
            inner.prop_map(|e| PathExpr::Optional(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nfa_agrees_with_backtracking_reference(
        expr in arb_expr(),
        path in proptest::collection::vec(0..DEVICES, 0..6),
        dests in proptest::collection::vec(0..DEVICES, 0..2),
    ) {
        let t = topo();
        let path: Vec<DeviceId> = path.into_iter().map(DeviceId).collect();
        let dests: Vec<DeviceId> = dests.into_iter().map(DeviceId).collect();
        let nfa = Nfa::compile(&expr);
        prop_assert_eq!(
            nfa.accepts(&t, &path, &dests),
            matches_ref(&expr, &t, &path, &dests),
            "expr={:?} path={:?}", expr, path
        );
    }

    #[test]
    fn incremental_stepping_equals_whole_path(
        expr in arb_expr(),
        path in proptest::collection::vec(0..DEVICES, 0..6),
    ) {
        let t = topo();
        let path: Vec<DeviceId> = path.into_iter().map(DeviceId).collect();
        let nfa = Nfa::compile(&expr);
        // Step-by-step subset construction must agree with accepts().
        let mut cur = nfa.eps_closure(&[nfa.start()]);
        for &d in &path {
            cur = nfa.step(&cur, &t, d, &[]);
        }
        prop_assert_eq!(nfa.is_accepting(&cur), nfa.accepts(&t, &path, &[]));
    }
}
