//! A dependency-free, drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace points
//! the `rand` dependency at this shim (see `[workspace.dependencies]`).
//! Only the surface the repository actually uses is provided: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for seeding, deterministic for a given
//! seed on every platform. It is **not** the identical stream the real
//! `StdRng` (ChaCha12) produces; callers in this repository only rely on
//! determinism per seed, never on specific values.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform-range sampler (the integer primitives). The
/// blanket [`SampleRange`] impls below key off this trait, which is what
/// lets type inference unify integer literals in `rng.gen_range(0..8)`
/// with the expression's expected type, exactly like real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Unbiased sample in `[0, span)` via rejection (Lemire-style threshold).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Fisher–Yates shuffling and element selection, mirroring
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::uniform_u128(rng, (i + 1) as u128)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u128(rng, self.len() as u128) as usize;
                Some(&self[i])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = r.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "p=0.5 produced {hits}/1000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
