//! A dependency-free, drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates.io access, so the workspace points
//! the `criterion` dependency at this shim. Benchmarks compile and run
//! (`cargo bench`) with simple median-of-samples wall-clock timing and a
//! plain-text report — no statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the shim runs one routine
/// call per setup call regardless of variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-measurement state handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median sample duration of the last measurement.
    elapsed: Duration,
}

impl Bencher {
    fn measure(&mut self, mut sample: impl FnMut() -> Duration) {
        // Warm-up round, then the measured rounds.
        let _ = sample();
        let mut times: Vec<Duration> = (0..self.samples).map(|_| sample()).collect();
        times.sort_unstable();
        self.elapsed = times[times.len() / 2];
    }

    /// Times `routine` directly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.measure(|| {
            let t0 = Instant::now();
            black_box(routine());
            t0.elapsed()
        });
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            t0.elapsed()
        });
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{id:<48} {:>14.3?} (median of {})", b.elapsed, self.sample_size);
        self
    }

    /// Compatibility no-op (real criterion finalizes reports here).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro
/// forms: `criterion_group!(name, target, ...)` and
/// `criterion_group!(name = n; config = expr; targets = t, ...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("shim/iter", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2 + 2)
            })
        });
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(2);
        let mut setups = 0;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u32; 64]
                },
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 3);
    }
}

// The group/main macros are exercised in a doctest-style compile check:
// they expand to free functions, so any signature drift fails the build.
#[cfg(test)]
mod macro_expansion_check {
    fn target_a(c: &mut crate::Criterion) {
        c.bench_function("expand/a", |b| b.iter(|| 1 + 1));
    }

    crate::criterion_group!(
        name = group_with_config;
        config = crate::Criterion::default().sample_size(2);
        targets = target_a
    );
    crate::criterion_group!(group_plain, target_a);

    #[test]
    fn groups_callable() {
        group_with_config();
        group_plain();
    }
}
