//! A dependency-free, drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no crates.io access, so the workspace points
//! the `proptest` dependency at this shim. It provides the surface this
//! repository's property tests use — the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_recursive`, [`prop_oneof!`]
//! (weighted and unweighted), range / tuple / [`collection::vec`] /
//! [`strategy::Just`] / [`strategy::any`] strategies, and the
//! `prop_assert*` macros — with deterministic random sampling.
//!
//! Differences from real proptest, acceptable for this repository:
//!
//! * **no shrinking** — a failing case reports its seed and inputs but is
//!   not minimized;
//! * sampling is deterministic per test: case `i` always sees the same
//!   inputs (override the base seed with `PROPTEST_RNG_SEED`);
//! * only the configuration field `cases` is honored.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of test values. The shim keeps strategies pure
    /// samplers: `sample` draws one value from `rng`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Bounded recursive strategies. `_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility;
        /// recursion depth is bounded by `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                // Mix leaves back in so expected size stays bounded.
                cur = OneOf::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            cur
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe sampling, used behind [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of strategies (backs [`prop_oneof!`]).
    pub struct OneOf<T> {
        choices: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = choices.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: total weight must be positive");
            OneOf { choices, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.choices {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A/a);
    impl_tuple_strategy!(A/a, B/b);
    impl_tuple_strategy!(A/a, B/b, C/c);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`] (inclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic xoshiro256++ generator used for sampling.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Unbiased value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound == 1 {
                return 0;
            }
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }

    /// Subset of proptest's run configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A rejected test case (produced by the `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    fn base_seed() -> u64 {
        match std::env::var("PROPTEST_RNG_SEED") {
            Ok(v) => v.parse().unwrap_or(0xF1A5_4C0D_E000_0001),
            Err(_) => 0xF1A5_4C0D_E000_0001,
        }
    }

    /// Drives one property over `config.cases` deterministic cases.
    /// Panics (failing the `#[test]`) on the first rejected case.
    pub fn run_cases<F>(config: ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = base_seed();
        for i in 0..config.cases as u64 {
            let seed = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::from_seed(seed);
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest case {i}/{} failed (PROPTEST_RNG_SEED base {base}): {e}",
                    config.cases
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The property-test entry macro. Supports an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            // `#[test]` (and doc comments) arrive via the caller's own
            // attributes, exactly like real proptest.
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(config, |__rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), __rng);
                    )+
                    #[allow(unused_mut)]
                    let mut __case = ||
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Weighted or unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, rejecting the case
/// (with location and message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
                ),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0i64..=4).sample(&mut rng);
            assert!((0..=4).contains(&w));
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 2..5).sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(0u32), Just(1u32), Just(2u32)];
        let mut rng = TestRng::from_seed(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn weighted_oneof_biases() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::from_seed(4);
        let hits = (0..1000).filter(|_| strat.sample(&mut rng)).count();
        assert!(hits > 700, "weight-9 arm hit only {hits}/1000");
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum T {
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..4).prop_map(T::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            assert!(depth(&strat.sample(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a, a + 1);
        }
    }
}
