//! Host package for the repository-level integration tests in `tests/`.
//!
//! The tests exercise cross-crate behaviour: model equivalence between
//! Flash and the baselines, CE2D consistency over the simulated routing
//! substrate, forwarding oracles, subspace partitioning, and the full
//! dispatcher pipeline. See the `[[test]]` entries in this crate's
//! `Cargo.toml` for the mapping.
