//! A simulated OpenR-style sync-state routing substrate.
//!
//! The Flash paper evaluates CE2D against *real* OpenR instances running
//! in Mininet, each patched with a ~150-line device agent that tags FIB
//! updates with an epoch identifier (a hash of the state store's
//! (key, version) pairs) before sending them to the verifier (§4.1, §5.1).
//!
//! This crate substitutes a **discrete-event simulation** with the same
//! observable interface — a time-ordered stream of
//! `(arrival time, device, epoch tag, rule updates)` messages — because
//! CE2D consumes nothing else. The simulation models:
//!
//! * a versioned key-value store per device (OpenR's Adj store): every
//!   link has a version that bumps on every up/down event;
//! * **flooding** of state changes with a per-hop delay;
//! * a **decision module** that recomputes shortest-path FIBs after a
//!   hold-down, with configurable per-device FIB back-off (OpenR's
//!   `init/max backoff`, used by the paper to create long-tail arrivals);
//! * the **device agent**: FIB diffs are tagged with the epoch (XOR hash
//!   of (key, version) pairs, mirroring the paper's Boost hash) and sent
//!   with a configurable transmission delay and jitter;
//! * **fault injection**: buggy instances that install looping next hops
//!   (the `I2-OpenR/1buggy` setting) and per-device dampening delays
//!   (the `-lt` long-tail settings).

pub mod sim;

pub use sim::{AgentMessage, LinkEvent, OpenRSim, SimConfig, SimTime};
