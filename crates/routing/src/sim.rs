//! The discrete-event OpenR simulation.

use flash_ce2d::EpochTag;
use flash_netmodel::{
    ActionTable, DeviceId, HeaderLayout, Match, Rule, RuleOp, RuleUpdate, Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// A link up/down event injected into the simulation.
#[derive(Clone, Copy, Debug)]
pub struct LinkEvent {
    pub at: SimTime,
    pub a: DeviceId,
    pub b: DeviceId,
    pub up: bool,
}

/// One message from a device agent to the verification system.
#[derive(Clone, Debug)]
pub struct AgentMessage {
    /// Arrival time at the verifier.
    pub at: SimTime,
    pub device: DeviceId,
    /// Epoch tag: XOR hash of the device's (link, version) store.
    pub epoch: EpochTag,
    /// The FIB delta computed from this epoch's state.
    pub updates: Vec<RuleUpdate>,
}

/// Simulation parameters (all times in microseconds).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-hop propagation delay of state flooding.
    pub flood_delay: SimTime,
    /// Decision-module hold-down before recomputing the FIB.
    pub compute_delay: SimTime,
    /// Agent→verifier transmission delay.
    pub send_delay: SimTime,
    /// Uniform jitter added to every send (models scheduling noise; this
    /// is what interleaves epochs at the verifier and provokes the
    /// transient errors PUV/BUV report in Figure 8).
    pub send_jitter: SimTime,
    /// RNG seed for the jitter.
    pub seed: u64,
    /// Send an (empty) epoch announcement even when the FIB did not
    /// change — how the device agent tells the dispatcher it is
    /// synchronized on the new state. Disable to reproduce the paper's
    /// footnote-11 behaviour (unchanged FIBs are never reported).
    pub announce_unchanged: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            flood_delay: 1_000,      // 1 ms per hop
            compute_delay: 5_000,    // 5 ms decision hold-down
            send_delay: 2_000,       // 2 ms to the verifier
            send_jitter: 8_000,      // up to 8 ms of noise
            seed: 1,
            announce_unchanged: true,
        }
    }
}

/// Undirected link key (canonical order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct LinkKey(DeviceId, DeviceId);

impl LinkKey {
    fn new(a: DeviceId, b: DeviceId) -> Self {
        if a <= b {
            LinkKey(a, b)
        } else {
            LinkKey(b, a)
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct LinkRecord {
    version: u64,
    up: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    /// State record (link, version, up) arrives at `node`.
    Flood {
        node: DeviceId,
        link: LinkKey,
        version: u64,
        up: bool,
    },
    /// Decision module fires on `node`.
    Recompute { node: DeviceId },
}

/// splitmix64, used for the epoch hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The simulator.
pub struct OpenRSim {
    topo: Arc<Topology>,
    layout: HeaderLayout,
    config: SimConfig,
    /// Prefixes advertised by each device: `(owner, value, len)`.
    prefixes: Vec<(DeviceId, u64, u32)>,
    /// Per-device replica of the link-state store.
    kv: Vec<HashMap<LinkKey, LinkRecord>>,
    /// Per-device installed FIB: prefix index → next hop.
    fib: Vec<HashMap<usize, DeviceId>>,
    /// Last message arrival time per device (FIFO delivery enforcement).
    last_arrival: Vec<SimTime>,
    /// Per-device pending-recompute flag (event coalescing).
    pending: Vec<bool>,
    /// Extra delay before a device's agent transmits (dampening /
    /// long-tail injection).
    agent_delay: HashMap<DeviceId, SimTime>,
    /// Devices running the buggy decision module.
    buggy: std::collections::HashSet<DeviceId>,
    /// Authoritative next version per link (so several events injected
    /// before `run` still get strictly increasing versions).
    link_versions: HashMap<LinkKey, u64>,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    queued: Vec<Ev>,
    seq: u64,
    rng: StdRng,
    out: Vec<AgentMessage>,
    actions: ActionTable,
}

impl OpenRSim {
    /// Creates a simulator over `topo`. Every internal device starts with
    /// a complete, consistent view in which all links are up, and an
    /// initial FIB computed from it (the epoch-0 base state).
    pub fn new(topo: Arc<Topology>, layout: HeaderLayout, config: SimConfig) -> Self {
        let n = topo.device_count();
        let mut base = HashMap::new();
        for a in topo.devices() {
            for &b in topo.successors(a) {
                base.entry(LinkKey::new(a, b))
                    .or_insert(LinkRecord { version: 0, up: true });
            }
        }
        let seed = config.seed;
        let mut sim = OpenRSim {
            topo,
            layout,
            config,
            prefixes: Vec::new(),
            kv: vec![base; n],
            fib: vec![HashMap::new(); n],
            last_arrival: vec![0; n],
            pending: vec![false; n],
            agent_delay: HashMap::new(),
            buggy: std::collections::HashSet::new(),
            link_versions: HashMap::new(),
            queue: BinaryHeap::new(),
            queued: Vec::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            out: Vec::new(),

            actions: ActionTable::new(),
        };
        let _ = &mut sim;
        sim
    }

    /// Advertises a prefix owned by `dev`. Must be called before
    /// [`Self::initialize`].
    pub fn advertise(&mut self, dev: DeviceId, value: u64, len: u32) {
        self.prefixes.push((dev, value, len));
    }

    /// Marks a device's decision module as buggy: for destinations it
    /// should reach via next hop `n`, it instead installs a neighbor whose
    /// own route points back through it whenever one exists — creating a
    /// forwarding loop (the `1buggy` setting of §5.3).
    pub fn set_buggy(&mut self, dev: DeviceId) {
        self.buggy.insert(dev);
    }

    /// Adds a fixed transmission delay to a device's agent (the paper's
    /// 60 s dampening used to create long-tail arrivals).
    pub fn set_agent_delay(&mut self, dev: DeviceId, delay: SimTime) {
        self.agent_delay.insert(dev, delay);
    }

    /// The intern table for the actions the simulation produces. Hand the
    /// final table (after [`Self::run`]) to the verifier.
    pub fn actions(&self) -> &ActionTable {
        &self.actions
    }

    /// Computes the initial (epoch 0) FIBs and returns the corresponding
    /// update messages, all arriving at time 0. Call once, before
    /// injecting link events.
    pub fn initialize(&mut self) -> Vec<AgentMessage> {
        let devices: Vec<DeviceId> = self.topo.devices().collect();
        let mut msgs = Vec::new();
        for dev in devices {
            if self.topo.is_external(dev) {
                continue;
            }
            if let Some(msg) = self.recompute_fib(dev, 0) {
                msgs.push(msg);
            }
        }
        self.out.extend(msgs.clone());
        msgs
    }

    /// Injects a link event: flooding starts at both endpoints.
    pub fn inject(&mut self, ev: LinkEvent) {
        let link = LinkKey::new(ev.a, ev.b);
        // Strictly increasing per-link versions, independent of whether
        // earlier events have been processed yet.
        let counter = self.link_versions.entry(link).or_insert(0);
        *counter += 1;
        let v = *counter;
        for node in [ev.a, ev.b] {
            self.schedule(
                ev.at,
                Ev::Flood {
                    node,
                    link,
                    version: v,
                    up: ev.up,
                },
            );
        }
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        let idx = self.queued.len();
        self.queued.push(ev);
        self.queue.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// Runs the simulation to quiescence and returns every agent message
    /// generated by the injected events, sorted by arrival time.
    pub fn run(&mut self) -> Vec<AgentMessage> {
        let before = self.out.len();
        while let Some(Reverse((at, _, idx))) = self.queue.pop() {
            let ev = self.queued[idx];
            match ev {
                Ev::Flood {
                    node,
                    link,
                    version,
                    up,
                } => self.on_flood(at, node, link, version, up),
                Ev::Recompute { node } => {
                    self.pending[node.index()] = false;
                    if let Some(msg) = self.recompute_fib(node, at) {
                        self.out.push(msg);
                    }
                }
            }
        }
        let mut new: Vec<AgentMessage> = self.out[before..].to_vec();
        new.sort_by_key(|m| m.at);
        new
    }

    fn on_flood(&mut self, at: SimTime, node: DeviceId, link: LinkKey, version: u64, up: bool) {
        let store = &mut self.kv[node.index()];
        let cur = store.get(&link).copied();
        if let Some(c) = cur {
            if c.version >= version {
                return; // stale
            }
        }
        store.insert(link, LinkRecord { version, up });
        // Re-flood to neighbors.
        let neighbors: Vec<DeviceId> = self
            .topo
            .successors(node)
            .iter()
            .copied()
            .filter(|d| !self.topo.is_external(*d))
            .collect();
        for nb in neighbors {
            self.schedule(
                at + self.config.flood_delay,
                Ev::Flood {
                    node: nb,
                    link,
                    version,
                    up,
                },
            );
        }
        // Schedule a recompute after the hold-down (coalesced).
        if !self.pending[node.index()] {
            self.pending[node.index()] = true;
            self.schedule(at + self.config.compute_delay, Ev::Recompute { node });
        }
    }

    /// The epoch tag: XOR of per-record hashes, so devices with the same
    /// store contents produce the same tag regardless of insert order.
    fn epoch_of(&self, dev: DeviceId) -> EpochTag {
        let mut h = 0u64;
        for (k, r) in &self.kv[dev.index()] {
            let key_hash = mix(((k.0 .0 as u64) << 32) | k.1 .0 as u64);
            h ^= mix(key_hash ^ mix(r.version));
        }
        h
    }

    /// Is `link` up in `dev`'s view?
    fn link_up(&self, dev: DeviceId, a: DeviceId, b: DeviceId) -> bool {
        self.kv[dev.index()]
            .get(&LinkKey::new(a, b))
            .map(|r| r.up)
            .unwrap_or(false)
    }

    /// BFS distances toward `dst` in `viewer`'s view of the topology.
    fn distances_to(&self, viewer: DeviceId, dst: DeviceId) -> Vec<u32> {
        let n = self.topo.device_count();
        let mut dist = vec![u32::MAX; n];
        dist[dst.index()] = 0;
        let mut q = std::collections::VecDeque::new();
        q.push_back(dst);
        while let Some(u) = q.pop_front() {
            for &v in self.topo.predecessors(u) {
                if self.topo.is_external(v) {
                    continue;
                }
                if dist[v.index()] == u32::MAX && self.link_up(viewer, v, u) {
                    dist[v.index()] = dist[u.index()] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Shortest-path next hop from `src` toward `dst` given `dst`'s
    /// distance table. Deterministic: lowest-id tie break.
    fn next_hop_from(
        &self,
        viewer: DeviceId,
        src: DeviceId,
        dist: &[u32],
    ) -> Option<DeviceId> {
        if dist[src.index()] == u32::MAX || dist[src.index()] == 0 {
            return None;
        }
        self.topo
            .successors(src)
            .iter()
            .copied()
            .filter(|&nb| {
                self.link_up(viewer, src, nb)
                    && dist[nb.index()] != u32::MAX
                    && dist[nb.index()] + 1 == dist[src.index()]
            })
            .min()
    }

    /// BFS next hop (uncached convenience path, kept for tests/tools).
    #[allow(dead_code)]
    fn next_hop(&self, viewer: DeviceId, src: DeviceId, dst: DeviceId) -> Option<DeviceId> {
        if src == dst {
            return None;
        }
        let dist = self.distances_to(viewer, dst);
        self.next_hop_from(viewer, src, &dist)
    }

    /// Recomputes `dev`'s FIB from its current view; emits the diff as an
    /// agent message (or None when nothing changed).
    fn recompute_fib(&mut self, dev: DeviceId, at: SimTime) -> Option<AgentMessage> {
        let mut new_fib: HashMap<usize, DeviceId> = HashMap::new();
        // One BFS per distinct prefix owner, shared across its prefixes.
        let mut dist_cache: HashMap<DeviceId, Vec<u32>> = HashMap::new();
        for (i, &(owner, _, _)) in self.prefixes.iter().enumerate() {
            if owner == dev {
                continue; // local delivery
            }
            let dist = dist_cache
                .entry(owner)
                .or_insert_with(|| self.distances_to(dev, owner))
                .clone();
            let mut nh = self.next_hop_from(dev, dev, &dist);
            if self.buggy.contains(&dev) {
                // Buggy decision: prefer a neighbor whose own correct
                // route to the destination points back at us — a loop.
                let neighbors: Vec<DeviceId> = self
                    .topo
                    .successors(dev)
                    .iter()
                    .copied()
                    .filter(|&nb| !self.topo.is_external(nb) && self.link_up(dev, dev, nb))
                    .collect();
                for nb in neighbors {
                    if self.next_hop_from(dev, nb, &dist) == Some(dev) {
                        nh = Some(nb);
                        break;
                    }
                }
            }
            if let Some(nh) = nh {
                new_fib.insert(i, nh);
            }
        }

        // Diff against the installed FIB.
        let mut updates = Vec::new();
        let old_fib = self.fib[dev.index()].clone();
        for (&i, &nh) in &new_fib {
            if old_fib.get(&i) != Some(&nh) {
                if let Some(&old_nh) = old_fib.get(&i) {
                    updates.push(RuleUpdate {
                        op: RuleOp::Delete,
                        rule: self.rule_for(i, old_nh),
                    });
                }
                updates.push(RuleUpdate {
                    op: RuleOp::Insert,
                    rule: self.rule_for(i, nh),
                });
            }
        }
        for (&i, &old_nh) in &old_fib {
            if !new_fib.contains_key(&i) {
                updates.push(RuleUpdate {
                    op: RuleOp::Delete,
                    rule: self.rule_for(i, old_nh),
                });
            }
        }
        self.fib[dev.index()] = new_fib;
        if updates.is_empty() && at != 0 && !self.config.announce_unchanged {
            return None;
        }
        let delay = self.agent_delay.get(&dev).copied().unwrap_or(0);
        let jitter = if self.config.send_jitter > 0 {
            self.rng.gen_range(0..self.config.send_jitter)
        } else {
            0
        };
        // Serialized delivery per device (a stated requirement of §4.1):
        // a message never arrives before an earlier one from the same
        // device.
        let at = (at + self.config.send_delay + delay + jitter)
            .max(self.last_arrival[dev.index()] + 1);
        self.last_arrival[dev.index()] = at;
        Some(AgentMessage {
            at,
            device: dev,
            epoch: self.epoch_of(dev),
            updates,
        })
    }

    fn rule_for(&mut self, prefix_idx: usize, nh: DeviceId) -> Rule {
        let (_, value, len) = self.prefixes[prefix_idx];
        let act = self.actions.fwd(nh);
        Rule::new(
            Match::dst_prefix(&self.layout, value, len),
            len as i64,
            act,
        )
    }

    /// The converged FIB of a device (for test oracles).
    pub fn fib_of(&self, dev: DeviceId) -> &HashMap<usize, DeviceId> {
        &self.fib[dev.index()]
    }

    /// The current epoch tag of every internal device (test oracle: after
    /// quiescence all devices agree).
    pub fn epochs(&self) -> Vec<(DeviceId, EpochTag)> {
        self.topo
            .devices()
            .filter(|&d| !self.topo.is_external(d))
            .map(|d| (d, self.epoch_of(d)))
            .collect()
    }
}

/// The 9-node Internet2-like topology used by the paper's CE2D
/// experiments (Figure 8's node names).
pub fn internet2() -> Arc<Topology> {
    let mut t = Topology::new();
    for n in [
        "seat", "salt", "losa", "kans", "hous", "chic", "atla", "wash", "newy",
    ] {
        t.add_device(n);
    }
    let d = |t: &Topology, n: &str| t.lookup(n).unwrap();
    let links = [
        ("seat", "salt"),
        ("seat", "losa"),
        ("losa", "salt"),
        ("losa", "hous"),
        ("salt", "kans"),
        ("kans", "hous"),
        ("kans", "chic"),
        ("hous", "atla"),
        ("chic", "atla"),
        ("chic", "newy"),
        ("chic", "wash"),
        ("atla", "wash"),
        ("atla", "newy"),
        ("newy", "wash"),
    ];
    for (a, b) in links {
        let (x, y) = (d(&t, a), d(&t, b));
        t.add_bilink(x, y);
    }
    Arc::new(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Topology>, OpenRSim) {
        let topo = internet2();
        let layout = HeaderLayout::new(&[("dst", 16)]);
        let mut sim = OpenRSim::new(topo.clone(), layout, SimConfig::default());
        // Every device advertises one /8 prefix block.
        for (i, dev) in topo.devices().enumerate() {
            sim.advertise(dev, (i as u64) << 8, 8);
        }
        (topo, sim)
    }

    #[test]
    fn initial_fibs_cover_all_prefixes() {
        let (topo, mut sim) = setup();
        let msgs = sim.initialize();
        assert_eq!(msgs.len(), topo.device_count());
        for m in &msgs {
            // 8 remote prefixes, all inserts.
            assert_eq!(m.updates.len(), 8);
            assert!(m.updates.iter().all(|u| u.op == RuleOp::Insert));
        }
        // All devices share the same initial epoch (same view).
        let tags: std::collections::HashSet<_> = msgs.iter().map(|m| m.epoch).collect();
        assert_eq!(tags.len(), 1);
    }

    #[test]
    fn link_failure_converges_to_common_epoch() {
        let (topo, mut sim) = setup();
        sim.initialize();
        let (a, b) = (topo.lookup("chic").unwrap(), topo.lookup("atla").unwrap());
        sim.inject(LinkEvent { at: 1_000, a, b, up: false });
        let msgs = sim.run();
        assert!(!msgs.is_empty());
        // After quiescence every device's store agrees → same epoch tag.
        let epochs = sim.epochs();
        let tags: std::collections::HashSet<_> = epochs.iter().map(|(_, t)| *t).collect();
        assert_eq!(tags.len(), 1, "all devices converge to one epoch");
        // And it differs from the initial epoch.
    }

    #[test]
    fn failed_link_not_used() {
        let (topo, mut sim) = setup();
        sim.initialize();
        let chic = topo.lookup("chic").unwrap();
        let atla = topo.lookup("atla").unwrap();
        sim.inject(LinkEvent { at: 1_000, a: chic, b: atla, up: false });
        sim.run();
        // chic must no longer point at atla for atla's prefix.
        let atla_prefix_idx = topo.devices().position(|d| d == atla).unwrap();
        let nh = sim.fib_of(chic).get(&atla_prefix_idx).copied();
        assert!(nh.is_some(), "atla still reachable another way");
        assert_ne!(nh, Some(atla));
    }

    #[test]
    fn recovery_restores_route() {
        let (topo, mut sim) = setup();
        sim.initialize();
        let chic = topo.lookup("chic").unwrap();
        let atla = topo.lookup("atla").unwrap();
        let idx = topo.devices().position(|d| d == atla).unwrap();
        sim.inject(LinkEvent { at: 1_000, a: chic, b: atla, up: false });
        sim.run();
        sim.inject(LinkEvent { at: 10_000_000, a: chic, b: atla, up: true });
        sim.run();
        assert_eq!(sim.fib_of(chic).get(&idx), Some(&atla));
    }

    #[test]
    fn agent_delay_creates_long_tail() {
        let (topo, mut sim) = setup();
        sim.initialize();
        let kans = topo.lookup("kans").unwrap();
        sim.set_agent_delay(kans, 60_000_000); // 60 s dampening
        let chic = topo.lookup("chic").unwrap();
        let atla = topo.lookup("atla").unwrap();
        sim.inject(LinkEvent { at: 1_000, a: chic, b: atla, up: false });
        let msgs = sim.run();
        let kans_msgs: Vec<_> = msgs.iter().filter(|m| m.device == kans).collect();
        let other_max = msgs
            .iter()
            .filter(|m| m.device != kans)
            .map(|m| m.at)
            .max()
            .unwrap_or(0);
        if let Some(km) = kans_msgs.first() {
            assert!(km.at > other_max + 59_000_000, "kans arrives ~60s late");
        }
    }

    #[test]
    fn buggy_device_creates_loop() {
        let (topo, mut sim) = setup();
        let salt = topo.lookup("salt").unwrap();
        sim.set_buggy(salt);
        sim.initialize();
        // Find a prefix where salt's next hop points at a neighbor that
        // routes back through salt.
        let mut looped = false;
        for (i, _) in sim.prefixes.clone().iter().enumerate() {
            if let Some(&nh) = sim.fib_of(salt).get(&i) {
                if sim.fib_of(nh).get(&i) == Some(&salt) {
                    looped = true;
                    break;
                }
            }
        }
        assert!(looped, "buggy salt must create at least one 2-node loop");
    }

    #[test]
    fn updates_are_deltas() {
        // A second recompute with no state change emits nothing.
        let (_, mut sim) = setup();
        sim.initialize();
        let msgs = sim.run(); // no events injected
        assert!(msgs.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let topo = internet2();
            let layout = HeaderLayout::new(&[("dst", 16)]);
            let mut sim = OpenRSim::new(topo.clone(), layout, SimConfig { seed, ..Default::default() });
            for (i, dev) in topo.devices().enumerate() {
                sim.advertise(dev, (i as u64) << 8, 8);
            }
            sim.initialize();
            let a = topo.lookup("seat").unwrap();
            let b = topo.lookup("salt").unwrap();
            sim.inject(LinkEvent { at: 500, a, b, up: false });
            sim.run()
                .iter()
                .map(|m| (m.at, m.device, m.epoch, m.updates.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds give different jitter");
    }
}
