//! Property tests for the epoch tracker: the active set must equal, at
//! every step, the set of tags that (a) are the latest tag of at least
//! one device and (b) have never been observed to precede another tag on
//! any device.

#![cfg(feature = "proptest")]

use flash_ce2d::{EpochTag, EpochTracker};
use flash_netmodel::DeviceId;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Oracle replay of the happens-before rules.
fn oracle_active(observations: &[(u32, EpochTag)]) -> HashSet<EpochTag> {
    let mut latest: HashMap<u32, EpochTag> = HashMap::new();
    let mut superseded: HashSet<EpochTag> = HashSet::new();
    for &(dev, tag) in observations {
        if let Some(&old) = latest.get(&dev) {
            if old != tag {
                superseded.insert(old);
            }
        }
        latest.insert(dev, tag);
    }
    latest
        .values()
        .filter(|t| !superseded.contains(t))
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn active_set_matches_oracle(
        observations in proptest::collection::vec((0u32..5, 1u64..6), 0..40)
    ) {
        let mut tracker = EpochTracker::new();
        for (i, &(dev, tag)) in observations.iter().enumerate() {
            tracker.observe(DeviceId(dev), tag);
            let expect = oracle_active(&observations[..=i]);
            let got: HashSet<EpochTag> = tracker.active_epochs().collect();
            prop_assert_eq!(&got, &expect, "after observation {}", i);
        }
    }

    #[test]
    fn deactivations_are_permanent(
        observations in proptest::collection::vec((0u32..5, 1u64..6), 0..40)
    ) {
        let mut tracker = EpochTracker::new();
        let mut ever_deactivated: HashSet<EpochTag> = HashSet::new();
        for &(dev, tag) in &observations {
            let ev = tracker.observe(DeviceId(dev), tag);
            for d in &ev.deactivated {
                ever_deactivated.insert(*d);
            }
            // A deactivated tag never reactivates.
            for d in &ever_deactivated {
                prop_assert!(!tracker.is_active(*d), "tag {} reactivated", d);
            }
            // newly_active implies it is actually active now.
            if ev.newly_active {
                prop_assert!(tracker.is_active(tag));
            }
        }
    }

    #[test]
    fn synchronized_sets_partition_devices(
        observations in proptest::collection::vec((0u32..5, 1u64..6), 1..40)
    ) {
        let mut tracker = EpochTracker::new();
        for &(dev, tag) in &observations {
            tracker.observe(DeviceId(dev), tag);
        }
        // Every device with a latest tag appears in exactly one epoch's
        // synchronized set.
        let devices: HashSet<u32> = observations.iter().map(|(d, _)| *d).collect();
        let mut seen: HashMap<u32, usize> = HashMap::new();
        let tags: HashSet<EpochTag> = observations.iter().map(|(_, t)| *t).collect();
        for t in tags {
            for d in tracker.synchronized(t) {
                *seen.entry(d.0).or_insert(0) += 1;
            }
        }
        for d in devices {
            prop_assert_eq!(seen.get(&d).copied().unwrap_or(0), 1, "device {}", d);
        }
    }
}
