//! The verification graph: the cross product of the network graph and the
//! requirement automaton (§4.2).
//!
//! Nodes are `(device, DFA state)` pairs, where DFA states are subsets of
//! NFA states produced by a lazy subset construction. The initial graph
//! contains every topology path from the sources that can still match the
//! requirement; as devices synchronize, edges incompatible with their
//! forwarding action are pruned from a per-equivalence-class copy.

use crate::decremental::{DecrementalReach, NodeIdx};
use flash_netmodel::{DeviceId, Topology};
use flash_spec::{Nfa, StateId};
use std::collections::HashMap;

/// The static template of a verification graph (one per requirement),
/// cloned into per-EC pruned instances.
#[derive(Clone, Debug)]
pub struct ProductGraph {
    /// `(device, dfa-state)` for each product node. Index 0 is a virtual
    /// super-source connected to the entry nodes.
    nodes: Vec<(DeviceId, u32)>,
    /// Out-adjacency of the full (unpruned) graph, super-source included.
    out: Vec<Vec<NodeIdx>>,
    /// Product nodes per device (for pruning).
    by_device: HashMap<DeviceId, Vec<NodeIdx>>,
    /// Accepting product nodes.
    accepts: Vec<NodeIdx>,
    /// Number of distinct DFA states materialized.
    dfa_states: usize,
}

impl ProductGraph {
    /// Builds the product of `topo` and `nfa` for entry devices `sources`,
    /// with `dests` resolving the requirement's `>` selector.
    ///
    /// Only product nodes reachable from the sources are materialized.
    pub fn build(topo: &Topology, nfa: &Nfa, sources: &[DeviceId], dests: &[DeviceId]) -> Self {
        let mut dfa: Vec<Vec<StateId>> = Vec::new();
        let mut dfa_index: HashMap<Vec<StateId>, u32> = HashMap::new();
        fn intern_dfa(
            dfa: &mut Vec<Vec<StateId>>,
            dfa_index: &mut HashMap<Vec<StateId>, u32>,
            set: Vec<StateId>,
        ) -> u32 {
            if let Some(&i) = dfa_index.get(&set) {
                return i;
            }
            let i = dfa.len() as u32;
            dfa_index.insert(set.clone(), i);
            dfa.push(set);
            i
        }

        let mut nodes: Vec<(DeviceId, u32)> = vec![(DeviceId(u32::MAX), u32::MAX)]; // super-source
        let mut node_index: HashMap<(DeviceId, u32), NodeIdx> = HashMap::new();
        let mut out: Vec<Vec<NodeIdx>> = vec![Vec::new()];
        let mut by_device: HashMap<DeviceId, Vec<NodeIdx>> = HashMap::new();
        let mut accepts = Vec::new();

        let q0 = nfa.eps_closure(&[nfa.start()]);
        let mut work: Vec<NodeIdx> = Vec::new();

        let add_node = |dev: DeviceId,
                            q: u32,
                            nodes: &mut Vec<(DeviceId, u32)>,
                            out: &mut Vec<Vec<NodeIdx>>,
                            node_index: &mut HashMap<(DeviceId, u32), NodeIdx>,
                            by_device: &mut HashMap<DeviceId, Vec<NodeIdx>>|
         -> (NodeIdx, bool) {
            if let Some(&i) = node_index.get(&(dev, q)) {
                return (i, false);
            }
            let i = nodes.len() as NodeIdx;
            nodes.push((dev, q));
            out.push(Vec::new());
            node_index.insert((dev, q), i);
            by_device.entry(dev).or_default().push(i);
            (i, true)
        };

        for &src in sources {
            let q1 = nfa.step(&q0, topo, src, dests);
            if q1.is_empty() {
                continue;
            }
            let accepting = nfa.is_accepting(&q1);
            let qi = intern_dfa(&mut dfa, &mut dfa_index, q1);
            let (ni, fresh) = add_node(src, qi, &mut nodes, &mut out, &mut node_index, &mut by_device);
            out[0].push(ni);
            if fresh {
                if accepting {
                    accepts.push(ni);
                }
                work.push(ni);
            }
        }

        while let Some(ni) = work.pop() {
            let (dev, qi) = nodes[ni as usize];
            let q = dfa[qi as usize].clone();
            for &next in topo.successors(dev) {
                let q2 = nfa.step(&q, topo, next, dests);
                if q2.is_empty() {
                    continue; // this path can never match
                }
                let accepting = nfa.is_accepting(&q2);
                let q2i = intern_dfa(&mut dfa, &mut dfa_index, q2);
                let (mi, fresh) =
                    add_node(next, q2i, &mut nodes, &mut out, &mut node_index, &mut by_device);
                if !out[ni as usize].contains(&mi) {
                    out[ni as usize].push(mi);
                }
                if fresh {
                    if accepting {
                        accepts.push(mi);
                    }
                    work.push(mi);
                }
            }
        }

        ProductGraph {
            nodes,
            out,
            by_device,
            accepts,
            dfa_states: dfa.len(),
        }
    }

    /// Number of product nodes (excluding the super-source).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    pub fn edge_count(&self) -> usize {
        self.out.iter().map(|v| v.len()).sum()
    }

    pub fn dfa_state_count(&self) -> usize {
        self.dfa_states
    }

    pub fn accept_nodes(&self) -> &[NodeIdx] {
        &self.accepts
    }

    /// The device of a product node.
    pub fn device_of(&self, n: NodeIdx) -> DeviceId {
        self.nodes[n as usize].0
    }

    /// Product nodes living on `dev`.
    pub fn nodes_of_device(&self, dev: DeviceId) -> &[NodeIdx] {
        self.by_device.get(&dev).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Instantiates the decremental reachability structure over this
    /// graph, rooted at the super-source.
    pub fn instantiate(&self) -> DecrementalReach {
        DecrementalReach::new(self.out.clone(), &[0])
    }

    /// Out-adjacency (for baselines that need to traverse the template).
    pub fn adjacency(&self) -> &[Vec<NodeIdx>] {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_spec::parse_path_expr;

    /// The Figure 3 topology.
    fn fig3() -> Topology {
        let mut t = Topology::new();
        for n in ["S", "A", "B", "E", "C", "D", "Y", "W"] {
            t.add_device(n);
        }
        let d = |n: &str| t.lookup(n).unwrap();
        let links = [
            ("S", "A"),
            ("S", "W"),
            ("A", "B"),
            ("A", "W"),
            ("B", "E"),
            ("B", "Y"),
            ("E", "C"),
            ("W", "A"),
            ("W", "C"),
            ("Y", "C"),
            ("C", "D"),
            ("E", "Y"),
        ];
        let pairs: Vec<(DeviceId, DeviceId)> =
            links.iter().map(|(a, b)| (d(a), d(b))).collect();
        for (a, b) in pairs {
            t.add_bilink(a, b);
        }
        t
    }

    #[test]
    fn build_figure3_graph() {
        let t = fig3();
        let nfa = Nfa::compile(&parse_path_expr("S .* [W|Y] .* D").unwrap());
        let src = vec![t.lookup("S").unwrap()];
        let g = ProductGraph::build(&t, &nfa, &src, &[]);
        assert!(g.node_count() > 0);
        assert!(!g.accept_nodes().is_empty());
        // Every accept node must be device D.
        for &a in g.accept_nodes() {
            assert_eq!(t.name(g.device_of(a)), "D");
        }
        // Initial graph: accept reachable.
        let r = g.instantiate();
        assert!(g.accept_nodes().iter().any(|&a| r.is_reached(a)));
    }

    #[test]
    fn impossible_requirement_has_no_accepts() {
        let t = fig3();
        // Z does not exist in the topology.
        let nfa = Nfa::compile(&parse_path_expr("S .* Z").unwrap());
        let src = vec![t.lookup("S").unwrap()];
        let g = ProductGraph::build(&t, &nfa, &src, &[]);
        assert!(g.accept_nodes().is_empty());
    }

    #[test]
    fn pruning_cuts_reachability() {
        let t = fig3();
        let nfa = Nfa::compile(&parse_path_expr("S .* D").unwrap());
        let s = t.lookup("S").unwrap();
        let g = ProductGraph::build(&t, &nfa, &[s], &[]);
        let mut r = g.instantiate();
        // Prune ALL out-edges of S's product nodes: D becomes unreachable.
        for &n in g.nodes_of_device(s) {
            let succ: Vec<_> = r.successors(n).to_vec();
            for v in succ {
                r.remove_edge(n, v);
            }
        }
        assert!(!g.accept_nodes().iter().any(|&a| r.is_reached(a)));
    }

    #[test]
    fn sources_with_no_match_are_skipped() {
        let t = fig3();
        let nfa = Nfa::compile(&parse_path_expr("A .* D").unwrap());
        // Entering at S cannot match an expression anchored at A.
        let g = ProductGraph::build(&t, &nfa, &[t.lookup("S").unwrap()], &[]);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn by_device_index_consistent() {
        let t = fig3();
        let nfa = Nfa::compile(&parse_path_expr("S .* D").unwrap());
        let g = ProductGraph::build(&t, &nfa, &[t.lookup("S").unwrap()], &[]);
        let mut total = 0;
        for dev in t.devices() {
            for &n in g.nodes_of_device(dev) {
                assert_eq!(g.device_of(n), dev);
                total += 1;
            }
        }
        assert_eq!(total, g.node_count());
    }
}
