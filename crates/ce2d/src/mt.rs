//! The model-traversal (MT) baseline of Figures 12 and 18.
//!
//! MT answers the same reachability questions as DGQ by walking the model
//! from scratch on every check: a depth-first traversal from each source
//! following the equivalence class's forwarding actions. Complexity is
//! `O(|V| · (|V| + |E|))` per check, versus the decremental graph's O(1)
//! query. It also performs full loop checks used by the PUV/BUV baseline
//! strategies (Figure 8).

use flash_imt::{InverseModel, PatId, PatStore};
use flash_netmodel::{ActionTable, DeviceId, Topology};
use std::collections::HashSet;
use std::sync::Arc;

/// Stateless traversal checker over the current inverse model.
pub struct ModelTraversal {
    topo: Arc<Topology>,
    actions: Arc<ActionTable>,
}

impl ModelTraversal {
    pub fn new(topo: Arc<Topology>, actions: Arc<ActionTable>) -> Self {
        ModelTraversal { topo, actions }
    }

    /// Can packets of the EC `vector` reach any device in `dests` starting
    /// from `src`, following forwarding actions? (Drop or missing FIB
    /// entries stop the walk.)
    pub fn reachable(
        &self,
        pat: &PatStore,
        vector: PatId,
        src: DeviceId,
        dests: &[DeviceId],
    ) -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![src];
        while let Some(u) = stack.pop() {
            if !seen.insert(u) {
                continue;
            }
            if dests.contains(&u) {
                return true;
            }
            let act = pat.get(vector, u);
            for &nh in self.actions.next_hops(act) {
                stack.push(nh);
            }
        }
        false
    }

    /// All-pair reachability check: for every EC in the model and every
    /// source, test reachability to `dests`. Returns the number of
    /// `(EC, source)` pairs that fail. This is the MT curve of Figure 12.
    pub fn all_pair_reachability(
        &self,
        pat: &PatStore,
        model: &InverseModel,
        sources: &[DeviceId],
        dests: &[DeviceId],
    ) -> usize {
        let mut failures = 0;
        for entry in model.entries() {
            for &s in sources {
                if !self.reachable(pat, entry.vector, s, dests) {
                    failures += 1;
                }
            }
        }
        failures
    }

    /// Full loop check over one EC: does following the EC's actions from
    /// any device revisit a device? Returns one witness cycle.
    pub fn find_loop(&self, pat: &PatStore, vector: PatId) -> Option<Vec<DeviceId>> {
        let n = self.topo.device_count();
        // 0 = white, 1 = on stack, 2 = done
        let mut color = vec![0u8; n];
        for start in self.topo.devices() {
            if color[start.index()] != 0 {
                continue;
            }
            let mut path: Vec<DeviceId> = Vec::new();
            if let Some(c) = self.dfs_loop(pat, vector, start, &mut color, &mut path) {
                return Some(c);
            }
        }
        None
    }

    fn dfs_loop(
        &self,
        pat: &PatStore,
        vector: PatId,
        u: DeviceId,
        color: &mut [u8],
        path: &mut Vec<DeviceId>,
    ) -> Option<Vec<DeviceId>> {
        color[u.index()] = 1;
        path.push(u);
        let act = pat.get(vector, u);
        let hops: Vec<DeviceId> = self.actions.next_hops(act).to_vec();
        for nh in hops {
            match color[nh.index()] {
                1 => {
                    let pos = path.iter().position(|&d| d == nh).unwrap();
                    return Some(path[pos..].to_vec());
                }
                0 => {
                    if let Some(c) = self.dfs_loop(pat, vector, nh, color, path) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        color[u.index()] = 2;
        path.pop();
        None
    }

    /// Loop check over the whole model: first EC with a loop wins. Used by
    /// the PUV/BUV strategies, which treat the (possibly transient) model
    /// as ground truth.
    pub fn find_any_loop(
        &self,
        pat: &PatStore,
        model: &InverseModel,
    ) -> Option<(flash_bdd::Pred, Vec<DeviceId>)> {
        for entry in model.entries() {
            if let Some(c) = self.find_loop(pat, entry.vector) {
                return Some((entry.pred.clone(), c));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_imt::{ModelManager, ModelManagerConfig};
    use flash_netmodel::{HeaderLayout, Match, Rule, RuleUpdate};

    fn line3() -> (Arc<Topology>, Vec<DeviceId>) {
        let mut t = Topology::new();
        let a = t.add_device("a");
        let b = t.add_device("b");
        let c = t.add_device("c");
        t.add_bilink(a, b);
        t.add_bilink(b, c);
        (Arc::new(t), vec![a, b, c])
    }

    fn setup(topo: &Arc<Topology>) -> (ModelTraversal, ModelManager, Arc<ActionTable>, HeaderLayout) {
        let layout = HeaderLayout::new(&[("dst", 8)]);
        let mut at = ActionTable::new();
        for d in topo.devices() {
            at.fwd(d);
        }
        let at = Arc::new(at);
        let mt = ModelTraversal::new(topo.clone(), at.clone());
        let mgr = ModelManager::new(ModelManagerConfig::whole_space(layout.clone()));
        (mt, mgr, at, layout)
    }

    fn route(mgr: &mut ModelManager, at: &Arc<ActionTable>, layout: &HeaderLayout, dev: DeviceId, next: DeviceId) {
        let mut t = (**at).clone();
        let a = t.fwd(next);
        mgr.submit(
            dev,
            [RuleUpdate::insert(Rule::new(Match::dst_prefix(layout, 0x10, 8), 1, a))],
        );
        mgr.flush();
    }

    #[test]
    fn reachability_follows_actions() {
        let (topo, ids) = line3();
        let (mt, mut mgr, at, layout) = setup(&topo);
        route(&mut mgr, &at, &layout, ids[0], ids[1]);
        route(&mut mgr, &at, &layout, ids[1], ids[2]);
        let (_, pat, model) = mgr.parts_mut();
        // The EC carrying the route: find an entry with nonempty vector.
        let e = model
            .entries()
            .iter()
            .find(|e| e.vector != flash_imt::PAT_NIL)
            .unwrap();
        assert!(mt.reachable(pat, e.vector, ids[0], &[ids[2]]));
        assert!(!mt.reachable(pat, e.vector, ids[2], &[ids[0]]), "c has no FIB");
    }

    #[test]
    fn loop_found_by_traversal() {
        let (topo, ids) = line3();
        let (mt, mut mgr, at, layout) = setup(&topo);
        route(&mut mgr, &at, &layout, ids[0], ids[1]);
        route(&mut mgr, &at, &layout, ids[1], ids[0]);
        let (_, pat, model) = mgr.parts_mut();
        let (pred, cycle) = mt.find_any_loop(pat, model).expect("loop expected");
        assert!(!pred.is_false());
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn no_loop_on_linear_route() {
        let (topo, ids) = line3();
        let (mt, mut mgr, at, layout) = setup(&topo);
        route(&mut mgr, &at, &layout, ids[0], ids[1]);
        route(&mut mgr, &at, &layout, ids[1], ids[2]);
        let (_, pat, model) = mgr.parts_mut();
        assert!(mt.find_any_loop(pat, model).is_none());
    }

    #[test]
    fn all_pair_counts_failures() {
        let (topo, ids) = line3();
        let (mt, mut mgr, at, layout) = setup(&topo);
        route(&mut mgr, &at, &layout, ids[0], ids[1]);
        let (_, pat, model) = mgr.parts_mut();
        // Model has 2 ECs (routed + default). Sources a,b to dest c.
        let fails = mt.all_pair_reachability(pat, model, &[ids[0], ids[1]], &[ids[2]]);
        assert!(fails > 0);
    }
}
