//! Decremental single-source reachability (the "DGQ" structure).
//!
//! The verification graph only ever loses edges as devices synchronize
//! (§4.2: "the set of possible requirement-compliant paths … are
//! monotonically decreasing"). This structure maintains the set of nodes
//! reachable from a source set under edge deletions:
//!
//! * a reachability tree is maintained (every reached node has a parent
//!   edge that is still present);
//! * deleting a non-tree edge is O(1);
//! * deleting a tree edge detaches a subtree, which the structure tries to
//!   reattach through surviving in-edges; nodes that cannot be reattached
//!   become unreachable (and never come back — the graph is decremental).
//!
//! Queries (`is_reached`, `reachable_count`) are O(1), matching the
//! practical algorithms studied in the paper's reference 41.

/// Dense node id within one reachability instance.
pub type NodeIdx = u32;

const NO_PARENT: u32 = u32::MAX;

/// Decremental reachability from a fixed source set.
#[derive(Clone, Debug)]
pub struct DecrementalReach {
    /// Current out-edges (edges are removed, never added).
    out: Vec<Vec<NodeIdx>>,
    /// Current in-edges (kept in sync with `out`).
    inn: Vec<Vec<NodeIdx>>,
    /// Reachability-tree parent of each reached node (`NO_PARENT` for
    /// sources and unreached nodes).
    parent: Vec<u32>,
    /// Children lists of the reachability tree.
    children: Vec<Vec<NodeIdx>>,
    reached: Vec<bool>,
    is_source: Vec<bool>,
    reached_count: usize,
    /// Total edges removed so far (statistics).
    removed_edges: u64,
}

impl DecrementalReach {
    /// Builds the structure over a graph given as out-adjacency lists,
    /// computing initial reachability from `sources` by BFS.
    pub fn new(out: Vec<Vec<NodeIdx>>, sources: &[NodeIdx]) -> Self {
        let n = out.len();
        let mut inn = vec![Vec::new(); n];
        for (u, vs) in out.iter().enumerate() {
            for &v in vs {
                inn[v as usize].push(u as NodeIdx);
            }
        }
        let mut s = DecrementalReach {
            out,
            inn,
            parent: vec![NO_PARENT; n],
            children: vec![Vec::new(); n],
            reached: vec![false; n],
            is_source: vec![false; n],
            reached_count: 0,
            removed_edges: 0,
        };
        let mut queue = std::collections::VecDeque::new();
        for &src in sources {
            if !s.reached[src as usize] {
                s.reached[src as usize] = true;
                s.is_source[src as usize] = true;
                s.reached_count += 1;
                queue.push_back(src);
            }
        }
        while let Some(u) = queue.pop_front() {
            for i in 0..s.out[u as usize].len() {
                let v = s.out[u as usize][i];
                if !s.reached[v as usize] {
                    s.reached[v as usize] = true;
                    s.reached_count += 1;
                    s.parent[v as usize] = u;
                    s.children[u as usize].push(v);
                    queue.push_back(v);
                }
            }
        }
        s
    }

    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// O(1): is `v` still reachable from the source set?
    pub fn is_reached(&self, v: NodeIdx) -> bool {
        self.reached[v as usize]
    }

    /// O(1): how many nodes are still reachable?
    pub fn reached_count(&self) -> usize {
        self.reached_count
    }

    pub fn removed_edges(&self) -> u64 {
        self.removed_edges
    }

    /// Current out-neighbors of `u`.
    pub fn successors(&self, u: NodeIdx) -> &[NodeIdx] {
        &self.out[u as usize]
    }

    /// Whether the edge `(u, v)` is still present.
    pub fn has_edge(&self, u: NodeIdx, v: NodeIdx) -> bool {
        self.out[u as usize].contains(&v)
    }

    /// Removes the edge `(u, v)`; no-op if already absent. Unreachable
    /// nodes are reported through [`Self::is_reached`].
    pub fn remove_edge(&mut self, u: NodeIdx, v: NodeIdx) {
        let pos = match self.out[u as usize].iter().position(|&x| x == v) {
            Some(p) => p,
            None => return,
        };
        self.out[u as usize].swap_remove(pos);
        if let Some(p) = self.inn[v as usize].iter().position(|&x| x == u) {
            self.inn[v as usize].swap_remove(p);
        }
        self.removed_edges += 1;

        if !self.reached[u as usize] || self.parent[v as usize] != u {
            return; // non-tree edge: O(1)
        }
        // Tree edge removed: the subtree rooted at v is orphaned.
        self.detach_children(u, v);
        self.repair(v);
    }

    fn detach_children(&mut self, parent: NodeIdx, child: NodeIdx) {
        if let Some(p) = self.children[parent as usize]
            .iter()
            .position(|&x| x == child)
        {
            self.children[parent as usize].swap_remove(p);
        }
    }

    /// Attempts to reattach the orphaned subtree rooted at `root`.
    fn repair(&mut self, root: NodeIdx) {
        // Collect the orphaned subtree.
        let mut orphan = Vec::new();
        let mut in_orphan = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            if in_orphan.insert(x) {
                orphan.push(x);
                stack.extend(self.children[x as usize].iter().copied());
            }
        }
        // Try to reattach orphans through surviving in-edges from reached
        // non-orphan nodes. Fixpoint: each successful reattachment rescues
        // the node's whole remaining subtree.
        let mut progress = true;
        while progress {
            progress = false;
            let mut i = 0;
            while i < orphan.len() {
                let x = orphan[i];
                let found = self.inn[x as usize]
                    .iter()
                    .copied()
                    .find(|&y| self.reached[y as usize] && !in_orphan.contains(&y));
                if let Some(y) = found {
                    // Rescue x and its entire current subtree. Detach x
                    // from its old parent first — a stale child entry
                    // would corrupt later subtree walks.
                    let old_parent = self.parent[x as usize];
                    if old_parent != NO_PARENT {
                        self.detach_children(old_parent, x);
                    }
                    self.parent[x as usize] = y;
                    self.children[y as usize].push(x);
                    let mut rescue = vec![x];
                    while let Some(z) = rescue.pop() {
                        in_orphan.remove(&z);
                        if let Some(p) = orphan.iter().position(|&o| o == z) {
                            orphan.swap_remove(p);
                        }
                        rescue.extend(self.children[z as usize].iter().copied());
                    }
                    progress = true;
                } else {
                    i += 1;
                }
            }
        }
        // Whatever is left becomes unreachable for good.
        for &x in &orphan {
            if self.is_source[x as usize] {
                // Sources are roots; they are never unreached. (A source in
                // the orphan set can only happen if it was reparented —
                // sources have NO_PARENT so they never enter a subtree.)
                continue;
            }
            self.reached[x as usize] = false;
            self.reached_count -= 1;
            self.parent[x as usize] = NO_PARENT;
            // Their children lists only reference other orphans.
            self.children[x as usize].clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle.
    fn bfs_reachable(out: &[Vec<NodeIdx>], sources: &[NodeIdx]) -> Vec<bool> {
        let mut reached = vec![false; out.len()];
        let mut q: Vec<NodeIdx> = sources.to_vec();
        for &s in sources {
            reached[s as usize] = true;
        }
        while let Some(u) = q.pop() {
            for &v in &out[u as usize] {
                if !reached[v as usize] {
                    reached[v as usize] = true;
                    q.push(v);
                }
            }
        }
        reached
    }

    fn chain(n: usize) -> Vec<Vec<NodeIdx>> {
        (0..n)
            .map(|i| {
                if i + 1 < n {
                    vec![(i + 1) as NodeIdx]
                } else {
                    vec![]
                }
            })
            .collect()
    }

    #[test]
    fn initial_bfs() {
        let g = chain(5);
        let r = DecrementalReach::new(g, &[0]);
        assert_eq!(r.reached_count(), 5);
        assert!(r.is_reached(4));
    }

    #[test]
    fn chain_break_unreaches_suffix() {
        let g = chain(5);
        let mut r = DecrementalReach::new(g, &[0]);
        r.remove_edge(2, 3);
        assert!(r.is_reached(2));
        assert!(!r.is_reached(3));
        assert!(!r.is_reached(4));
        assert_eq!(r.reached_count(), 3);
    }

    #[test]
    fn non_tree_edge_removal_keeps_reachability() {
        // 0 -> 1 -> 2 and 0 -> 2 (one of them is a non-tree edge).
        let g = vec![vec![1, 2], vec![2], vec![]];
        let mut r = DecrementalReach::new(g, &[0]);
        r.remove_edge(0, 2); // may or may not be the tree edge
        assert!(r.is_reached(2), "still reachable via 0->1->2");
        r.remove_edge(1, 2);
        assert!(!r.is_reached(2));
    }

    #[test]
    fn reattach_through_alternative_parent() {
        // diamond: 0->1, 0->2, 1->3, 2->3, 3->4
        let g = vec![vec![1, 2], vec![3], vec![3], vec![4], vec![]];
        let mut r = DecrementalReach::new(g, &[0]);
        // Remove whichever path the tree chose; 3 must survive via the other.
        r.remove_edge(1, 3);
        assert!(r.is_reached(3));
        assert!(r.is_reached(4));
        r.remove_edge(2, 3);
        assert!(!r.is_reached(3));
        assert!(!r.is_reached(4));
    }

    #[test]
    fn cycle_does_not_self_sustain() {
        // 0 -> 1 -> 2 -> 1 (cycle 1-2). Removing 0->1 must kill 1 and 2
        // even though they point at each other.
        let g = vec![vec![1], vec![2], vec![1]];
        let mut r = DecrementalReach::new(g, &[0]);
        r.remove_edge(0, 1);
        assert!(!r.is_reached(1), "cycle must not keep itself alive");
        assert!(!r.is_reached(2));
        assert_eq!(r.reached_count(), 1);
    }

    #[test]
    fn multiple_sources() {
        let g = vec![vec![2], vec![2], vec![3], vec![]];
        let mut r = DecrementalReach::new(g, &[0, 1]);
        r.remove_edge(0, 2);
        assert!(r.is_reached(2), "still fed by source 1");
        r.remove_edge(1, 2);
        assert!(!r.is_reached(2));
        assert!(r.is_reached(0) && r.is_reached(1), "sources stay reached");
    }

    #[test]
    fn removing_absent_edge_is_noop() {
        let g = chain(3);
        let mut r = DecrementalReach::new(g, &[0]);
        r.remove_edge(0, 2);
        r.remove_edge(2, 0);
        assert_eq!(r.reached_count(), 3);
    }

    #[test]
    fn randomized_against_bfs_oracle() {
        // Deterministic pseudo-random graph + deletion order, cross-checked
        // against a from-scratch BFS after every deletion.
        let n = 30usize;
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut out: Vec<Vec<NodeIdx>> = vec![Vec::new(); n];
        let mut edges = Vec::new();
        for (u, out_u) in out.iter_mut().enumerate() {
            for v in 0..n {
                if u != v && rng() % 100 < 12 {
                    out_u.push(v as NodeIdx);
                    edges.push((u as NodeIdx, v as NodeIdx));
                }
            }
        }
        let sources = [0 as NodeIdx, 1];
        let mut dec = DecrementalReach::new(out.clone(), &sources);
        // Shuffle edges deterministically.
        for i in (1..edges.len()).rev() {
            let j = (rng() as usize) % (i + 1);
            edges.swap(i, j);
        }
        for (u, v) in edges {
            dec.remove_edge(u, v);
            // Mirror on the oracle graph.
            if let Some(p) = out[u as usize].iter().position(|&x| x == v) {
                out[u as usize].swap_remove(p);
            }
            let oracle = bfs_reachable(&out, &sources);
            for (x, &reachable) in oracle.iter().enumerate() {
                assert_eq!(
                    dec.is_reached(x as NodeIdx),
                    reachable,
                    "mismatch at node {x} after removing ({u},{v})"
                );
            }
        }
    }
}
