//! Consistent, Efficient Early Detection (CE2D) — §4 of the Flash paper.
//!
//! CE2D answers verification questions on a *partially known* data plane
//! without ever reporting a transient (inconsistent) error:
//!
//! * [`epoch`] — epoch tags, happens-before tracking, and the active-epoch
//!   set that identifies potential converged states (§4.1).
//! * [`product`] — the verification graph: the cross product of the network
//!   graph and the requirement automaton (§4.2).
//! * [`decremental`] — the decremental reachability structure (DGQ) that
//!   answers "can an accept state still be reached" in O(1) per query while
//!   edges are pruned (§4.2, reference 41).
//! * [`regex_verify`] — Algorithm 2: per-equivalence-class consistent
//!   partial verification for path-regular-expression requirements,
//!   including anycast/multicast/coverage variants (Appendix D.2).
//! * [`loopdet`] — Algorithm 3: consistent early *loop* detection with
//!   hyper-node compression and incremental search (§4.3, Appendix D.3).
//! * [`mt`] — the model-traversal baseline used in Figures 12 and 18.

pub mod decremental;
pub mod epoch;
pub mod loopdet;
pub mod mt;
pub mod product;
pub mod regex_verify;
pub mod rewrite;
pub mod vector_proto;

pub use decremental::DecrementalReach;
pub use epoch::{EpochEvent, EpochTag, EpochTracker};
pub use loopdet::{LoopVerdict, LoopVerifier};
pub use mt::ModelTraversal;
pub use product::ProductGraph;
pub use regex_verify::{RegexVerifier, Verdict};
pub use rewrite::RewriteTraversal;
pub use vector_proto::{CausalTag, ConvergenceDetector};
