//! Consistent model construction for **vector-based** control planes
//! (BGP-style), Appendix D.1.
//!
//! Sync-state protocols let every device hash its state store into an
//! epoch tag. Vector protocols (BGP) have no shared global state, so the
//! paper instead has each device append *causal information* to its FIB
//! updates: the message that directly caused the recomputation, and the
//! messages the device sent right after. The dispatcher runs a
//! centralized convergence detection (after reference 68): an event's update set
//! is complete exactly when every announced message has been observed as
//! consumed — at that point the accumulated FIB updates form a consistent
//! converged state and can be dispatched to a verifier.

use flash_netmodel::DeviceId;
use std::collections::{HashMap, HashSet};

/// Identifier of a routing event (e.g. one remote prefix withdrawal).
pub type EventId = u64;
/// Identifier of one protocol message (an announcement/withdrawal sent
/// between two devices).
pub type MsgId = u64;

/// The causal annotation a device agent attaches to a FIB-update report
/// (Appendix D.1: "what is the direct cause of an FIB update … and what
/// is the immediate action after computing an FIB update").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalTag {
    /// The event this report belongs to.
    pub event: EventId,
    /// The message whose receipt triggered the recomputation; `None` at
    /// the event's origin device.
    pub caused_by: Option<MsgId>,
    /// Messages the device sent to neighbors as a result.
    pub sent: Vec<MsgId>,
}

/// The per-event bookkeeping state.
#[derive(Clone, Debug, Default)]
struct EventState {
    /// Messages announced as sent, not yet observed as consumed.
    outstanding: HashSet<MsgId>,
    /// Messages observed as consumed before their send was reported
    /// (reports may arrive in any order across devices).
    consumed_early: HashSet<MsgId>,
    /// The event origin has reported.
    origin_seen: bool,
    /// Devices that contributed updates for this event.
    devices: HashSet<DeviceId>,
}

impl EventState {
    fn converged(&self) -> bool {
        self.origin_seen && self.outstanding.is_empty() && self.consumed_early.is_empty()
    }
}

/// Centralized convergence detection over causal-tagged reports.
///
/// Reports from one device arrive in order (the same serialized-channel
/// assumption as epoch tags); across devices any interleaving is fine.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceDetector {
    events: HashMap<EventId, EventState>,
    converged: HashSet<EventId>,
}

impl ConvergenceDetector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one causal-tagged report. Returns `true` when the event
    /// just became converged — the dispatcher should then feed the
    /// event's accumulated updates to a verifier.
    pub fn observe(&mut self, device: DeviceId, tag: &CausalTag) -> bool {
        if self.converged.contains(&tag.event) {
            // Late duplicate: the protocol guarantees no further messages
            // for a converged event; tolerate replays.
            return false;
        }
        let st = self.events.entry(tag.event).or_default();
        st.devices.insert(device);
        match tag.caused_by {
            None => st.origin_seen = true,
            Some(m) => {
                if !st.outstanding.remove(&m) {
                    // Consumption observed before the send report.
                    st.consumed_early.insert(m);
                }
            }
        }
        for &m in &tag.sent {
            if !st.consumed_early.remove(&m) {
                st.outstanding.insert(m);
            }
        }
        if st.converged() {
            self.converged.insert(tag.event);
            true
        } else {
            false
        }
    }

    /// Is the event's update set known complete?
    pub fn is_converged(&self, event: EventId) -> bool {
        self.converged.contains(&event)
    }

    /// Devices that contributed updates for an event.
    pub fn devices_of(&self, event: EventId) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .events
            .get(&event)
            .map(|s| s.devices.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Number of messages still outstanding for an event (0 when
    /// converged or unknown).
    pub fn outstanding(&self, event: EventId) -> usize {
        self.events
            .get(&event)
            .map(|s| s.outstanding.len() + s.consumed_early.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DeviceId {
        DeviceId(i)
    }

    fn tag(event: EventId, caused_by: Option<MsgId>, sent: &[MsgId]) -> CausalTag {
        CausalTag {
            event,
            caused_by,
            sent: sent.to_vec(),
        }
    }

    #[test]
    fn linear_propagation_converges_at_the_end() {
        // origin d0 --m1--> d1 --m2--> d2 (leaf).
        let mut det = ConvergenceDetector::new();
        assert!(!det.observe(d(0), &tag(7, None, &[1])));
        assert!(!det.observe(d(1), &tag(7, Some(1), &[2])));
        assert!(det.observe(d(2), &tag(7, Some(2), &[])));
        assert!(det.is_converged(7));
        assert_eq!(det.devices_of(7), vec![d(0), d(1), d(2)]);
    }

    #[test]
    fn fanout_requires_all_branches() {
        // d0 sends m1 to d1 and m2 to d2.
        let mut det = ConvergenceDetector::new();
        det.observe(d(0), &tag(1, None, &[1, 2]));
        assert!(!det.observe(d(1), &tag(1, Some(1), &[])));
        assert_eq!(det.outstanding(1), 1);
        assert!(det.observe(d(2), &tag(1, Some(2), &[])));
    }

    #[test]
    fn out_of_order_reports_handled() {
        // d1's consumption report arrives before d0's origin report.
        let mut det = ConvergenceDetector::new();
        assert!(!det.observe(d(1), &tag(3, Some(9), &[])));
        assert!(det.observe(d(0), &tag(3, None, &[9])));
        assert!(det.is_converged(3));
    }

    #[test]
    fn independent_events_tracked_separately() {
        let mut det = ConvergenceDetector::new();
        det.observe(d(0), &tag(1, None, &[10]));
        det.observe(d(0), &tag(2, None, &[20]));
        assert!(det.observe(d(1), &tag(1, Some(10), &[])));
        assert!(!det.is_converged(2));
        assert!(det.observe(d(1), &tag(2, Some(20), &[])));
    }

    #[test]
    fn relay_chains_with_merging() {
        // Diamond: d0 → {d1, d2} → d3 (d3 consumes two messages and
        // recomputes twice, reporting each consumption separately).
        let mut det = ConvergenceDetector::new();
        det.observe(d(0), &tag(5, None, &[1, 2]));
        det.observe(d(1), &tag(5, Some(1), &[3]));
        det.observe(d(2), &tag(5, Some(2), &[4]));
        assert!(!det.observe(d(3), &tag(5, Some(3), &[])));
        assert!(det.observe(d(3), &tag(5, Some(4), &[])));
    }

    #[test]
    fn duplicate_reports_after_convergence_ignored() {
        let mut det = ConvergenceDetector::new();
        det.observe(d(0), &tag(1, None, &[1]));
        assert!(det.observe(d(1), &tag(1, Some(1), &[])));
        assert!(!det.observe(d(1), &tag(1, Some(1), &[])));
        assert!(det.is_converged(1));
    }
}
