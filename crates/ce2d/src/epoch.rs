//! Epoch tags and happens-before tracking (§4.1).
//!
//! Every FIB update arrives tagged with an *epoch* — an identifier of the
//! network state the sender's routing software computed from. The tracker
//! maintains, per device, the most recent tag, and a set of **active**
//! epochs: tags with no known successor on any device. An active epoch is
//! a potential converged state and deserves a verifier; an epoch observed
//! to be superseded anywhere can never be the converged state and its
//! verifier is stopped.

use flash_netmodel::DeviceId;
use std::collections::{HashMap, HashSet};

/// An epoch tag. The paper computes it as a hash of the (key, version)
/// pairs of the routing state store; any unique 64-bit identifier works.
pub type EpochTag = u64;

/// What happened when an update's tag was observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochEvent {
    /// The tag just became active (a verifier should be started).
    pub newly_active: bool,
    /// Tags that just became inactive (their verifiers should stop).
    pub deactivated: Vec<EpochTag>,
    /// The tag was already known inactive when observed (its updates go to
    /// the queue but no verifier is spawned).
    pub observed_inactive: bool,
}

/// Tracks per-device epoch progression and the active-epoch set.
#[derive(Clone, Debug, Default)]
pub struct EpochTracker {
    latest: HashMap<DeviceId, EpochTag>,
    active: HashSet<EpochTag>,
    inactive: HashSet<EpochTag>,
}

impl EpochTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `dev` sent updates tagged `tag`. Serialized delivery
    /// per device is assumed (the paper's agent requirement): a device's
    /// tags arrive in the order they were generated, so the previous tag
    /// of the same device happens-before `tag`.
    pub fn observe(&mut self, dev: DeviceId, tag: EpochTag) -> EpochEvent {
        let mut ev = EpochEvent::default();
        if let Some(&old) = self.latest.get(&dev) {
            if old == tag {
                // Same epoch, more updates: nothing changes.
                ev.observed_inactive = self.inactive.contains(&tag);
                return ev;
            }
            // old ≺ tag: old can no longer be the converged state.
            if self.active.remove(&old) {
                ev.deactivated.push(old);
            }
            self.inactive.insert(old);
        }
        self.latest.insert(dev, tag);
        if self.inactive.contains(&tag) {
            ev.observed_inactive = true;
        } else if self.active.insert(tag) {
            ev.newly_active = true;
        }
        ev
    }

    /// Is `tag` currently a potential converged state?
    pub fn is_active(&self, tag: EpochTag) -> bool {
        self.active.contains(&tag)
    }

    pub fn active_epochs(&self) -> impl Iterator<Item = EpochTag> + '_ {
        self.active.iter().copied()
    }

    /// The most recent tag observed from a device.
    pub fn latest_of(&self, dev: DeviceId) -> Option<EpochTag> {
        self.latest.get(&dev).copied()
    }

    /// Devices whose most recent tag equals `tag` — the *synchronized*
    /// devices of that epoch (they have computed their FIB from this state
    /// and, being its latest, are presumed converged on it).
    pub fn synchronized(&self, tag: EpochTag) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .latest
            .iter()
            .filter(|(_, &t)| t == tag)
            .map(|(&d, _)| d)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DeviceId {
        DeviceId(i)
    }

    #[test]
    fn first_observation_activates() {
        let mut tr = EpochTracker::new();
        let ev = tr.observe(d(0), 10);
        assert!(ev.newly_active);
        assert!(tr.is_active(10));
        assert_eq!(tr.synchronized(10), vec![d(0)]);
    }

    #[test]
    fn same_tag_twice_is_quiet() {
        let mut tr = EpochTracker::new();
        tr.observe(d(0), 10);
        let ev = tr.observe(d(0), 10);
        assert_eq!(ev, EpochEvent::default());
    }

    #[test]
    fn successor_deactivates_predecessor() {
        let mut tr = EpochTracker::new();
        tr.observe(d(0), 10);
        let ev = tr.observe(d(0), 20);
        assert!(ev.newly_active);
        assert_eq!(ev.deactivated, vec![10]);
        assert!(!tr.is_active(10));
        assert!(tr.is_active(20));
    }

    #[test]
    fn paper_figure4_scenario() {
        // t1=[1,0] from S; t2=[0,1] from A,B; then t3=[1,1] from S,A,B;
        // then E reports t2 (late) and finally t3.
        let (t1, t2, t3) = (1u64, 2, 3);
        let (s, a, b, e) = (d(0), d(1), d(2), d(3));
        let mut tr = EpochTracker::new();
        assert!(tr.observe(s, t1).newly_active);
        assert!(tr.observe(a, t2).newly_active);
        assert!(!tr.observe(b, t2).newly_active, "t2 already active");
        assert!(tr.is_active(t1) && tr.is_active(t2));

        // t3 arrives on S: t1 deactivates, t3 activates.
        let ev = tr.observe(s, t3);
        assert!(ev.newly_active);
        assert_eq!(ev.deactivated, vec![t1]);
        // t3 on A and B: t2 deactivates when A reports.
        let ev = tr.observe(a, t3);
        assert_eq!(ev.deactivated, vec![t2]);
        tr.observe(b, t3);
        assert!(tr.is_active(t3));
        assert!(!tr.is_active(t1) && !tr.is_active(t2));

        // E reports the stale t2: it must NOT reactivate.
        let ev = tr.observe(e, t2);
        assert!(ev.observed_inactive);
        assert!(!ev.newly_active);
        assert!(!tr.is_active(t2));

        // E finally reaches t3: synchronized set of t3 is everyone.
        tr.observe(e, t3);
        assert_eq!(tr.synchronized(t3), vec![s, a, b, e]);
    }

    #[test]
    fn reverted_tag_stays_inactive() {
        // A device that flaps back to an old tag must not reactivate it
        // (the old tag has a known successor somewhere).
        let mut tr = EpochTracker::new();
        tr.observe(d(0), 1);
        tr.observe(d(0), 2);
        let ev = tr.observe(d(1), 1);
        assert!(ev.observed_inactive);
        assert!(!tr.is_active(1));
    }

    #[test]
    fn synchronized_tracks_latest_only() {
        let mut tr = EpochTracker::new();
        tr.observe(d(0), 1);
        tr.observe(d(1), 1);
        tr.observe(d(0), 2);
        assert_eq!(tr.synchronized(1), vec![d(1)]);
        assert_eq!(tr.synchronized(2), vec![d(0)]);
    }
}
