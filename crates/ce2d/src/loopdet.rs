//! Algorithm 3: fast consistent partial loop detection (§4.3, App. D.3).
//!
//! A loop among synchronized devices is *consistent*: it will exist in the
//! converged state no matter what the still-unsynchronized devices do,
//! because synchronized devices will not change their FIB within the
//! epoch. The verifier therefore reports a loop as soon as one closes
//! inside the synchronized subset.
//!
//! Two techniques keep this cheap:
//!
//! * **Hyper-node compression** — every connected component of
//!   unsynchronized devices collapses into one hyper node that can
//!   forward anywhere its members could, avoiding path enumeration inside
//!   the component (Figure 5);
//! * **Incremental detection** — if the previous state had no loop, a new
//!   deterministic loop must pass through a newly synchronized device, so
//!   the search starts only from those.

use flash_bdd::{Pred, PredEngine};
use flash_imt::{InverseModel, PatStore};
use flash_netmodel::{ActionTable, DeviceId, Topology};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The outcome of a loop check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoopVerdict {
    /// A loop through synchronized devices only — consistent: it is
    /// guaranteed in the converged state. Carries the device cycle and the
    /// predicate of the equivalence class exhibiting it.
    LoopFound {
        cycle: Vec<DeviceId>,
        ec_pred: Pred,
    },
    /// No loop can exist: all devices synchronized, none found.
    NoLoop,
    /// Loops through unsynchronized devices remain possible.
    Unknown,
}

/// A node in the compressed (hyper) graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum HyperNode {
    /// A synchronized device.
    Sync(DeviceId),
    /// A compressed component of unsynchronized devices (by component id).
    Hyper(u32),
}

/// Consistent partial loop detector for one model.
pub struct LoopVerifier {
    topo: Arc<Topology>,
    actions: Arc<ActionTable>,
    sync: HashSet<DeviceId>,
    /// Deterministic loops already reported (avoid duplicates).
    reported: HashSet<Vec<DeviceId>>,
    pub stats: LoopVerifierStats,
}

#[derive(Clone, Copy, Debug, Default)]
pub struct LoopVerifierStats {
    pub searches: u64,
    pub visited_nodes: u64,
}

impl LoopVerifier {
    pub fn new(topo: Arc<Topology>, actions: Arc<ActionTable>) -> Self {
        LoopVerifier {
            topo,
            actions,
            sync: HashSet::new(),
            reported: HashSet::new(),
            stats: LoopVerifierStats::default(),
        }
    }

    pub fn synchronized(&self) -> &HashSet<DeviceId> {
        &self.sync
    }

    /// Builds the unsynchronized-component map: device → component id, and
    /// whether each component contains an internal directed cycle.
    fn build_components(&self) -> (HashMap<DeviceId, u32>, Vec<bool>) {
        let mut comp: HashMap<DeviceId, u32> = HashMap::new();
        let mut has_cycle: Vec<bool> = Vec::new();
        for dev in self.topo.devices() {
            if self.sync.contains(&dev) || self.topo.is_external(dev) || comp.contains_key(&dev) {
                continue;
            }
            let cid = has_cycle.len() as u32;
            // Undirected flood over unsynchronized internal devices.
            let mut members = Vec::new();
            let mut stack = vec![dev];
            comp.insert(dev, cid);
            while let Some(u) = stack.pop() {
                members.push(u);
                let neigh = self
                    .topo
                    .successors(u)
                    .iter()
                    .chain(self.topo.predecessors(u).iter());
                for &v in neigh {
                    if !self.sync.contains(&v)
                        && !self.topo.is_external(v)
                        && !comp.contains_key(&v)
                    {
                        comp.insert(v, cid);
                        stack.push(v);
                    }
                }
            }
            // Internal directed cycle? (the paper's `is_biconnected` test —
            // a component that can loop within itself.)
            has_cycle.push(component_has_directed_cycle(&self.topo, &members));
        }
        (comp, has_cycle)
    }

    /// Successors of a hyper-graph node under one EC's forwarding.
    fn hyper_successors(
        &self,
        node: HyperNode,
        comp: &HashMap<DeviceId, u32>,
        pat: &PatStore,
        vector: flash_imt::PatId,
        members_of: &HashMap<u32, Vec<DeviceId>>,
    ) -> Vec<HyperNode> {
        let mut out = Vec::new();
        let push = |n: HyperNode, out: &mut Vec<HyperNode>| {
            if !out.contains(&n) {
                out.push(n);
            }
        };
        match node {
            HyperNode::Sync(dev) => {
                let act = pat.get(vector, dev);
                for &nh in self.actions.next_hops(act) {
                    if self.topo.is_external(nh) {
                        continue; // leaves the network: no loop this way
                    }
                    if let Some(&c) = comp.get(&nh) {
                        push(HyperNode::Hyper(c), &mut out);
                    } else if self.sync.contains(&nh) {
                        push(HyperNode::Sync(nh), &mut out);
                    }
                }
            }
            HyperNode::Hyper(cid) => {
                // A hyper node may forward to any topology successor of
                // any member outside the component.
                for &m in members_of.get(&cid).map(|v| v.as_slice()).unwrap_or(&[]) {
                    for &nh in self.topo.successors(m) {
                        if self.topo.is_external(nh) {
                            continue;
                        }
                        if let Some(&c) = comp.get(&nh) {
                            if c != cid {
                                push(HyperNode::Hyper(c), &mut out);
                            }
                        } else if self.sync.contains(&nh) {
                            push(HyperNode::Sync(nh), &mut out);
                        }
                    }
                }
            }
        }
        out
    }

    /// Processes a model update: `newly_synced` devices just completed
    /// their epoch FIBs. Returns the strongest consistent verdict.
    pub fn on_model_update(
        &mut self,
        engine: &mut PredEngine,
        pat: &PatStore,
        model: &InverseModel,
        newly_synced: &[DeviceId],
    ) -> LoopVerdict {
        for &d in newly_synced {
            self.sync.insert(d);
        }
        let (comp, comp_cycle) = self.build_components();
        let mut members_of: HashMap<u32, Vec<DeviceId>> = HashMap::new();
        for (&d, &c) in &comp {
            members_of.entry(c).or_default().push(d);
        }

        let mut potential = false;
        // Hyper components that can loop internally are potential loops.
        if comp_cycle.iter().any(|&c| c) {
            potential = true;
        }

        // The search only reads an EC's action vector at *synchronized*
        // devices, so ECs whose vectors project identically onto the
        // synchronized set traverse the hyper graph identically. Group
        // them and run one DFS per group; a found loop's ec_pred is the
        // batched union of the whole group.
        let mut synced_devs: Vec<DeviceId> = self.sync.iter().copied().collect();
        synced_devs.sort_unstable();
        let mut group_index: HashMap<Vec<flash_netmodel::ActionId>, usize> = HashMap::new();
        let mut groups: Vec<(flash_imt::PatId, Vec<&Pred>)> = Vec::new();
        for entry in model.entries() {
            let key: Vec<flash_netmodel::ActionId> =
                synced_devs.iter().map(|&d| pat.get(entry.vector, d)).collect();
            match group_index.get(&key) {
                Some(&i) => groups[i].1.push(&entry.pred),
                None => {
                    group_index.insert(key, groups.len());
                    groups.push((entry.vector, vec![&entry.pred]));
                }
            }
        }

        for (vector, preds) in groups {
            // Incremental: a new deterministic loop must pass through a
            // newly synchronized device.
            for &start in newly_synced {
                if self.topo.is_external(start) {
                    continue;
                }
                self.stats.searches += 1;
                let mut path: Vec<HyperNode> = Vec::new();
                let mut on_path: HashSet<HyperNode> = HashSet::new();
                if let Some(cycle) = self.dfs(
                    HyperNode::Sync(start),
                    &mut path,
                    &mut on_path,
                    &comp,
                    &members_of,
                    pat,
                    vector,
                    &mut potential,
                ) {
                    let ec_pred = if preds.len() == 1 {
                        preds[0].clone()
                    } else {
                        engine.or_many(preds)
                    };
                    return LoopVerdict::LoopFound { cycle, ec_pred };
                }
            }
        }

        // `NoLoop` is only a consistent verdict when every device is
        // synchronized, no potential loop remains, AND no loop was ever
        // found (a previously reported loop persists: synchronized FIBs
        // do not change within the epoch).
        if self.reported.is_empty() && !potential && self.all_synchronized() {
            LoopVerdict::NoLoop
        } else {
            LoopVerdict::Unknown
        }
    }

    fn all_synchronized(&self) -> bool {
        self.topo
            .devices()
            .filter(|&d| !self.topo.is_external(d))
            .all(|d| self.sync.contains(&d))
    }

    /// Returns the device cycle of a newly found deterministic loop.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        node: HyperNode,
        path: &mut Vec<HyperNode>,
        on_path: &mut HashSet<HyperNode>,
        comp: &HashMap<DeviceId, u32>,
        members_of: &HashMap<u32, Vec<DeviceId>>,
        pat: &PatStore,
        vector: flash_imt::PatId,
        potential: &mut bool,
    ) -> Option<Vec<DeviceId>> {
        self.stats.visited_nodes += 1;
        if on_path.contains(&node) {
            // A cycle closed: it is the path segment from the first
            // occurrence of `node`. Deterministic iff every node on the
            // segment is a synchronized device (no hyper node).
            let pos = path.iter().position(|&n| n == node).unwrap();
            let segment = &path[pos..];
            if segment.iter().all(|n| matches!(n, HyperNode::Sync(_))) {
                let cycle: Vec<DeviceId> = segment
                    .iter()
                    .map(|n| match n {
                        HyperNode::Sync(d) => *d,
                        HyperNode::Hyper(_) => unreachable!(),
                    })
                    .collect();
                let mut canon = cycle.clone();
                canon.sort_unstable();
                if self.reported.insert(canon) {
                    return Some(cycle);
                }
            } else {
                // The cycle passes through a hyper node: only potential.
                *potential = true;
            }
            return None;
        }
        path.push(node);
        on_path.insert(node);
        let succ = self.hyper_successors(node, comp, pat, vector, members_of);
        for next in succ {
            if let Some(v) = self.dfs(
                next, path, on_path, comp, members_of, pat, vector, potential,
            ) {
                path.pop();
                on_path.remove(&node);
                return Some(v);
            }
        }
        path.pop();
        on_path.remove(&node);
        None
    }
}

/// Does the directed subgraph induced by `members` contain a cycle?
fn component_has_directed_cycle(topo: &Topology, members: &[DeviceId]) -> bool {
    let set: HashSet<DeviceId> = members.iter().copied().collect();
    let mut color: HashMap<DeviceId, u8> = HashMap::new(); // 1=gray, 2=black
    for &start in members {
        if color.contains_key(&start) {
            continue;
        }
        // Iterative DFS with gray/black coloring.
        let mut stack = vec![(start, 0usize)];
        color.insert(start, 1);
        while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
            let succs: Vec<DeviceId> = topo
                .successors(u)
                .iter()
                .copied()
                .filter(|v| set.contains(v))
                .collect();
            if *idx < succs.len() {
                let v = succs[*idx];
                *idx += 1;
                match color.get(&v) {
                    Some(1) => return true, // back edge
                    Some(_) => {}
                    None => {
                        color.insert(v, 1);
                        stack.push((v, 0));
                    }
                }
            } else {
                color.insert(u, 2);
                stack.pop();
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_imt::{ModelManager, ModelManagerConfig};
    use flash_netmodel::{HeaderLayout, Match, Rule, RuleUpdate};

    /// Figure 5 topology: A, B, C, X fully meshed enough for the examples.
    fn fig5() -> (Arc<Topology>, HashMap<&'static str, DeviceId>) {
        let mut t = Topology::new();
        let mut m = HashMap::new();
        for n in ["A", "B", "C", "X", "OUT"] {
            m.insert(n, if n == "OUT" { t.add_external(n) } else { t.add_device(n) });
        }
        for (a, b) in [("A", "B"), ("A", "C"), ("A", "X"), ("B", "X"), ("C", "X"), ("B", "C")] {
            let (x, y) = (m[a], m[b]);
            t.add_bilink(x, y);
        }
        t.add_link(m["C"], m["OUT"]);
        t.add_link(m["X"], m["OUT"]);
        (Arc::new(t), m)
    }

    struct Rig {
        verifier: LoopVerifier,
        mgr: ModelManager,
        actions: Arc<ActionTable>,
        layout: HeaderLayout,
    }

    fn rig(topo: &Arc<Topology>) -> Rig {
        let layout = HeaderLayout::new(&[("dst", 8)]);
        let mut actions = ActionTable::new();
        for d in topo.devices() {
            actions.fwd(d);
        }
        let actions = Arc::new(actions);
        Rig {
            verifier: LoopVerifier::new(topo.clone(), actions.clone()),
            mgr: ModelManager::new(ModelManagerConfig::whole_space(layout.clone())),
            actions,
            layout,
        }
    }

    fn sync(rig: &mut Rig, dev: DeviceId, next: DeviceId) -> LoopVerdict {
        let mut at = (*rig.actions).clone();
        let a = at.fwd(next);
        let r = Rule::new(Match::dst_prefix(&rig.layout, 0x10, 8), 1, a);
        rig.mgr.submit(dev, [RuleUpdate::insert(r)]);
        rig.mgr.flush();
        let (engine, pat, model) = rig.mgr.parts_mut();
        rig.verifier.on_model_update(engine, pat, model, &[dev])
    }

    #[test]
    fn figure5a_unknown_when_two_unsynchronized() {
        // sync = {A, B}: C and X compress to one hyper node; a loop is
        // possible (B→A→X→B) but not determined.
        let (topo, m) = fig5();
        let mut r = rig(&topo);
        assert_eq!(sync(&mut r, m["B"], m["A"]), LoopVerdict::Unknown);
        let v = sync(&mut r, m["A"], m["X"]);
        assert_eq!(v, LoopVerdict::Unknown, "hyper node keeps it undecided");
    }

    #[test]
    fn figure5b_loop_via_unsynchronized_is_potential_then_confirmed() {
        // B→A, A→X with X unsynchronized stays Unknown; once X→B arrives
        // the synchronized cycle B→A→X→B is deterministic.
        let (topo, m) = fig5();
        let mut r = rig(&topo);
        sync(&mut r, m["B"], m["A"]);
        sync(&mut r, m["A"], m["X"]);
        // C synchronized (forwards out): still Unknown — X is free.
        let v = sync(&mut r, m["C"], m["OUT"]);
        assert_eq!(v, LoopVerdict::Unknown);
        // X closes the cycle.
        let v = sync(&mut r, m["X"], m["B"]);
        match v {
            LoopVerdict::LoopFound { cycle, .. } => {
                let names: HashSet<&str> =
                    cycle.iter().map(|d| topo.name(*d)).collect();
                assert_eq!(names, HashSet::from(["A", "B", "X"]));
            }
            other => panic!("expected LoopFound, got {other:?}"),
        }
    }

    #[test]
    fn no_loop_when_all_drain_out() {
        let (topo, m) = fig5();
        let mut r = rig(&topo);
        sync(&mut r, m["A"], m["C"]);
        sync(&mut r, m["B"], m["C"]);
        sync(&mut r, m["X"], m["OUT"]);
        let v = sync(&mut r, m["C"], m["OUT"]);
        assert_eq!(v, LoopVerdict::NoLoop);
    }

    #[test]
    fn two_node_loop_detected_early() {
        // A→B, B→A closes immediately even with C, X silent.
        let (topo, m) = fig5();
        let mut r = rig(&topo);
        assert_eq!(sync(&mut r, m["A"], m["B"]), LoopVerdict::Unknown);
        let v = sync(&mut r, m["B"], m["A"]);
        match v {
            LoopVerdict::LoopFound { cycle, .. } => assert_eq!(cycle.len(), 2),
            other => panic!("expected LoopFound, got {other:?}"),
        }
    }

    #[test]
    fn drop_breaks_the_loop() {
        // A→B, B drops: no deterministic loop; with C, X unsynchronized
        // the verdict stays Unknown (they could still loop).
        let (topo, m) = fig5();
        let mut r = rig(&topo);
        sync(&mut r, m["A"], m["B"]);
        let layout = r.layout.clone();
        let rr = Rule::new(
            Match::dst_prefix(&layout, 0x10, 8),
            1,
            flash_netmodel::ACTION_DROP,
        );
        r.mgr.submit(m["B"], [RuleUpdate::insert(rr)]);
        r.mgr.flush();
        let (engine, pat, model) = r.mgr.parts_mut();
        let v = r.verifier.on_model_update(engine, pat, model, &[m["B"]]);
        assert_eq!(v, LoopVerdict::Unknown);
    }

    #[test]
    fn duplicate_loops_not_rereported() {
        let (topo, m) = fig5();
        let mut r = rig(&topo);
        sync(&mut r, m["A"], m["B"]);
        let v1 = sync(&mut r, m["B"], m["A"]);
        assert!(matches!(v1, LoopVerdict::LoopFound { .. }));
        // Further syncs keep the network looping but must not re-report
        // the same cycle.
        let v2 = sync(&mut r, m["C"], m["OUT"]);
        assert!(!matches!(v2, LoopVerdict::LoopFound { .. }));
    }

    #[test]
    fn component_cycle_detection() {
        let (topo, m) = fig5();
        assert!(component_has_directed_cycle(
            &topo,
            &[m["A"], m["B"], m["C"], m["X"]]
        ));
        assert!(!component_has_directed_cycle(&topo, &[m["A"]]));
    }
}
