//! Algorithm 2: fast consistent partial verification for path-regular-
//! expression requirements (§4.2, Appendix D.2).
//!
//! One [`RegexVerifier`] tracks one requirement. It keeps a per-
//! equivalence-class table of pruned verification graphs (`ecTable` in the
//! paper). On every model update it:
//!
//! 1. splits graph instances for newly created equivalence classes from
//!    the old class they were carved out of (footnote 12);
//! 2. prunes, for every newly synchronized device, the product edges that
//!    disagree with the class's forwarding action;
//! 3. queries the decremental structure — three-valued verdict:
//!    * **Unsatisfied** (consistent): no accept node reachable at all;
//!    * **Satisfied** (consistent): an accept node reachable through
//!      synchronized devices only;
//!    * **Unknown** otherwise.
//!
//! Anycast (`exactly one of K destinations`), multicast (`all of K`) and
//! coverage requirements are handled by the variants at the bottom.

use crate::product::ProductGraph;
use crate::DecrementalReach;
use flash_bdd::{EngineTelemetry, Pred, PredEngine};
use flash_imt::{InverseModel, PatStore};
use flash_netmodel::{ActionTable, Action, DeviceId, Topology};
use flash_spec::{Nfa, Requirement};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Three-valued early-detection verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Consistently satisfied: holds in the converged state regardless of
    /// the still-missing FIBs.
    Satisfied,
    /// Consistently unsatisfied: violated regardless of missing FIBs.
    Unsatisfied,
    /// Not yet decidable from the synchronized subset.
    Unknown,
}

/// Per-EC state: the pruned graph instance.
#[derive(Clone)]
struct EcState {
    reach: DecrementalReach,
    /// Devices already pruned into this instance.
    pruned: HashSet<DeviceId>,
}

/// Consistent partial verifier for one requirement.
pub struct RegexVerifier {
    topo: Arc<Topology>,
    actions: Arc<ActionTable>,
    requirement: Requirement,
    /// Resolved packet-destination devices for the `>` selector (kept for
    /// introspection; the selector is baked into the template at build).
    pub dests: Vec<DeviceId>,
    template: ProductGraph,
    packet_space: Pred,
    /// EC predicate → pruned instance. `Pred` identity is stable across
    /// engine collections, so this map never needs remapping.
    ec_table: HashMap<Pred, EcState>,
    /// Devices synchronized so far (in the epoch this verifier serves).
    sync: HashSet<DeviceId>,
    /// Statistics: total pruned edges, verdict queries.
    pub stats: RegexVerifierStats,
}

/// Counters for the DGQ-vs-MT comparison.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegexVerifierStats {
    pub splits: u64,
    pub pruned_edges: u64,
    pub queries: u64,
    /// Predicate-engine telemetry snapshot taken at the end of the last
    /// [`RegexVerifier::on_model_update`] call.
    pub engine: EngineTelemetry,
}

impl RegexVerifier {
    /// Builds the verifier: compiles the requirement, builds the product
    /// template, compiles the packet space to a predicate.
    pub fn new(
        topo: Arc<Topology>,
        actions: Arc<ActionTable>,
        requirement: Requirement,
        dests: Vec<DeviceId>,
        engine: &mut PredEngine,
        layout: &flash_netmodel::HeaderLayout,
    ) -> Self {
        let nfa = Nfa::compile(&requirement.expr);
        let template = ProductGraph::build(&topo, &nfa, &requirement.sources, &dests);
        let packet_space = requirement.packet_space.to_pred(layout, engine);
        // Pred's interior mutability is only its root refcount; Eq/Hash
        // use the immutable (node, engine) ids, so it is a sound map key.
        #[allow(clippy::mutable_key_type)]
        let mut ec_table = HashMap::new();
        // Initially one EC covers everything: the full template.
        ec_table.insert(
            engine.true_pred(),
            EcState {
                reach: template.instantiate(),
                pruned: HashSet::new(),
            },
        );
        RegexVerifier {
            topo,
            actions,
            requirement,
            dests,
            template,
            packet_space,
            ec_table,
            sync: HashSet::new(),
            stats: RegexVerifierStats::default(),
        }
    }

    pub fn requirement(&self) -> &Requirement {
        &self.requirement
    }

    pub fn template(&self) -> &ProductGraph {
        &self.template
    }

    /// The edges of `dev`'s product nodes that contradict forwarding
    /// action `act` are removed from `reach`.
    fn prune_device(
        template: &ProductGraph,
        topo: &Topology,
        actions: &ActionTable,
        reach: &mut DecrementalReach,
        dev: DeviceId,
        act: &Action,
        stats: &mut RegexVerifierStats,
    ) {
        let hops = act.next_hops();
        for &n in template.nodes_of_device(dev) {
            let succ: Vec<_> = reach.successors(n).to_vec();
            for v in succ {
                let vdev = template.device_of(v);
                if !hops.contains(&vdev) {
                    reach.remove_edge(n, v);
                    stats.pruned_edges += 1;
                }
            }
        }
        let _ = (topo, actions);
    }

    /// Processes a model update: `newly_synced` devices just delivered
    /// their complete FIB for this epoch. Returns the requirement verdict.
    ///
    /// `model` must be the post-update inverse model built from exactly
    /// the synchronized devices' FIBs (consistent model construction).
    pub fn on_model_update(
        &mut self,
        engine: &mut PredEngine,
        pat: &PatStore,
        model: &InverseModel,
        newly_synced: &[DeviceId],
    ) -> Verdict {
        for &d in newly_synced {
            self.sync.insert(d);
        }
        if self.requirement.cover {
            let v = self.cover_check(engine, pat, model, newly_synced);
            self.stats.engine = engine.telemetry();
            return v;
        }

        // Set of EC predicates in the new model that intersect the packet
        // space; each needs an up-to-date graph instance.
        #[allow(clippy::mutable_key_type)]
        let mut next_table: HashMap<Pred, EcState> = HashMap::new();
        let mut any_unknown = false;
        let mut any_unsat = false;
        let mut all_sat = true;

        // EC predicates are pairwise disjoint: subtracting each matched EC
        // from the still-unmatched packet space lets the scan stop as soon
        // as the space is fully accounted for.
        let mut remaining = self.packet_space.clone();
        for entry in model.entries() {
            if remaining.is_false() {
                break;
            }
            let overlap = engine.and(&entry.pred, &remaining);
            if overlap.is_false() {
                continue;
            }
            remaining = engine.diff(&remaining, &overlap);
            // Find or split the instance for this EC.
            let mut state = match self.ec_table.remove(&entry.pred) {
                Some(s) => s,
                None => {
                    // Split: find the old EC whose predicate contains this
                    // one (footnote 12 guarantees a unique parent).
                    let parents: Vec<Pred> = self.ec_table.keys().cloned().collect();
                    let parent = parents
                        .iter()
                        .find(|p| engine.implies(&entry.pred, p))
                        .and_then(|p| self.ec_table.get(p).cloned());
                    self.stats.splits += 1;
                    match parent {
                        Some(p) => p,
                        None => EcState {
                            reach: self.template.instantiate(),
                            pruned: HashSet::new(),
                        },
                    }
                }
            };
            // Prune every synchronized device not yet applied to this
            // instance under this EC's action.
            let to_prune: Vec<DeviceId> = self
                .sync
                .iter()
                .copied()
                .filter(|d| !state.pruned.contains(d))
                .collect();
            for d in to_prune {
                let act = self.actions.get(pat.get(entry.vector, d)).clone();
                Self::prune_device(
                    &self.template,
                    &self.topo,
                    &self.actions,
                    &mut state.reach,
                    d,
                    &act,
                    &mut self.stats,
                );
                state.pruned.insert(d);
            }
            // Verdict for this EC.
            self.stats.queries += 1;
            let v = self.ec_verdict(&state);
            match v {
                Verdict::Unsatisfied => any_unsat = true,
                Verdict::Unknown => {
                    any_unknown = true;
                    all_sat = false;
                }
                Verdict::Satisfied => {}
            }
            next_table.insert(entry.pred.clone(), state);
        }
        self.ec_table = next_table;
        self.stats.engine = engine.telemetry();

        if any_unsat {
            Verdict::Unsatisfied
        } else if any_unknown || !all_sat {
            Verdict::Unknown
        } else {
            Verdict::Satisfied
        }
    }

    /// Coverage semantics (Appendix D.2): *all* paths matching the
    /// expression must be present. Early detection reduces to checking
    /// that every synchronized device forwards to **all** of its product
    /// successors, for every equivalence class intersecting the packet
    /// space; a single missing branch is a consistent violation.
    fn cover_check(
        &mut self,
        engine: &mut PredEngine,
        pat: &PatStore,
        model: &InverseModel,
        newly_synced: &[DeviceId],
    ) -> Verdict {
        // Same disjoint-EC early exit as the main update path.
        let mut remaining = self.packet_space.clone();
        for entry in model.entries() {
            if remaining.is_false() {
                break;
            }
            let overlap = engine.and(&entry.pred, &remaining);
            if overlap.is_false() {
                continue;
            }
            remaining = engine.diff(&remaining, &overlap);
            // Incremental: previously synchronized devices were already
            // checked (their FIBs cannot change within the epoch), but a
            // model split can refine an EC, so recheck all synchronized
            // devices whose actions this EC constrains — cheap, the sets
            // are small.
            for &d in self.sync.iter() {
                let hops: Vec<DeviceId> = self
                    .actions
                    .next_hops(pat.get(entry.vector, d))
                    .to_vec();
                for &n in self.template.nodes_of_device(d) {
                    // Template successors of this product node — every one
                    // of them is on some matching path and must be covered.
                    for &succ in self.template.adjacency()[n as usize].iter() {
                        let vdev = self.template.device_of(succ);
                        if !hops.contains(&vdev) {
                            self.stats.queries += 1;
                            return Verdict::Unsatisfied;
                        }
                    }
                }
            }
        }
        self.stats.queries += 1;
        let _ = newly_synced;
        // All checked so far; consistent satisfaction needs every device
        // that appears in the verification graph to be synchronized.
        let all_graph_devices_synced = self
            .topo
            .devices()
            .filter(|&d| !self.template.nodes_of_device(d).is_empty())
            .all(|d| self.sync.contains(&d));
        if all_graph_devices_synced {
            Verdict::Satisfied
        } else {
            Verdict::Unknown
        }
    }

    /// Verdict for one EC instance.
    fn ec_verdict(&self, state: &EcState) -> Verdict {
        // Unsatisfied: no accept node reachable at all (O(1) queries).
        let reachable = self
            .template
            .accept_nodes()
            .iter()
            .any(|&a| state.reach.is_reached(a));
        if !reachable {
            return Verdict::Unsatisfied;
        }
        // Satisfied: an accept reachable through synchronized devices only.
        if self.synchronized_path_exists(state) {
            return Verdict::Satisfied;
        }
        Verdict::Unknown
    }

    /// BFS over the pruned instance restricted to synchronized devices.
    fn synchronized_path_exists(&self, state: &EcState) -> bool {
        let accepts: HashSet<_> = self.template.accept_nodes().iter().copied().collect();
        let mut seen = HashSet::new();
        let mut stack = vec![0u32]; // super-source
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if accepts.contains(&n) {
                return true;
            }
            for &v in state.reach.successors(n) {
                let dev = self.template.device_of(v);
                // Only walk through synchronized devices; an accept node
                // itself must also be synchronized (its delivery behaviour
                // is then known). External devices never send FIBs — their
                // behaviour (local delivery) is fixed, so they count as
                // synchronized.
                if self.sync.contains(&dev) || self.topo.is_external(dev) {
                    stack.push(v);
                }
            }
        }
        false
    }

    /// The synchronized devices this verifier has seen.
    pub fn synchronized(&self) -> &HashSet<DeviceId> {
        &self.sync
    }

    /// Anycast variant (Appendix D.2): with `K` destination groups, exactly
    /// one destination group must be reachable per source. This helper
    /// evaluates a set of independent verifiers (one per destination) and
    /// combines: exactly-one-Satisfied and rest-Unsatisfied ⇒ Satisfied;
    /// two Satisfied or all Unsatisfied ⇒ Unsatisfied; else Unknown.
    pub fn combine_anycast(verdicts: &[Verdict]) -> Verdict {
        let sat = verdicts.iter().filter(|v| **v == Verdict::Satisfied).count();
        let unsat = verdicts
            .iter()
            .filter(|v| **v == Verdict::Unsatisfied)
            .count();
        if sat > 1 || unsat == verdicts.len() {
            Verdict::Unsatisfied
        } else if sat == 1 && unsat == verdicts.len() - 1 {
            Verdict::Satisfied
        } else {
            Verdict::Unknown
        }
    }

    /// Multicast variant: all destinations must be reachable.
    pub fn combine_multicast(verdicts: &[Verdict]) -> Verdict {
        if verdicts.contains(&Verdict::Unsatisfied) {
            Verdict::Unsatisfied
        } else if verdicts.iter().all(|v| *v == Verdict::Satisfied) {
            Verdict::Satisfied
        } else {
            Verdict::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_imt::{ModelManager, ModelManagerConfig};
    use flash_netmodel::{HeaderLayout, Match, Rule, RuleUpdate};
    use flash_spec::parse_path_expr;

    /// Figure 3 network: S-A-B-E-C-D core, waypoints W and Y.
    fn fig3() -> (Arc<Topology>, HashMap<&'static str, DeviceId>) {
        let mut t = Topology::new();
        let mut m = HashMap::new();
        for n in ["S", "A", "B", "E", "C", "D", "Y", "W"] {
            m.insert(n, t.add_device(n));
        }
        for (a, b) in [
            ("S", "A"),
            ("S", "W"),
            ("A", "B"),
            ("A", "W"),
            ("B", "E"),
            ("B", "Y"),
            ("E", "C"),
            ("W", "C"),
            ("Y", "C"),
            ("C", "D"),
        ] {
            let (x, y) = (m[a], m[b]);
            t.add_bilink(x, y);
        }
        (Arc::new(t), m)
    }

    fn setup(
        topo: &Arc<Topology>,
        m: &HashMap<&'static str, DeviceId>,
    ) -> (RegexVerifier, ModelManager, Arc<ActionTable>) {
        let layout = HeaderLayout::new(&[("dst", 8)]);
        let mut actions = ActionTable::new();
        // Pre-intern unicast actions for every device so tests can use them.
        for d in topo.devices() {
            actions.fwd(d);
        }
        let actions = Arc::new(actions);
        let mut mgr = ModelManager::new(ModelManagerConfig::whole_space(layout.clone()));
        let req = Requirement::new(
            "fig3",
            Match::dst_prefix(&layout, 0x10, 8),
            vec![m["S"]],
            parse_path_expr("S .* [W|Y] .* D").unwrap(),
        );
        let v = RegexVerifier::new(
            topo.clone(),
            actions.clone(),
            req,
            vec![],
            mgr.engine_mut(),
            &layout,
        );
        (v, mgr, actions)
    }

    /// Installs a full-FIB unicast route on `dev` toward `next` for the
    /// whole requirement space and synchronizes it.
    fn sync_device(
        v: &mut RegexVerifier,
        mgr: &mut ModelManager,
        actions: &Arc<ActionTable>,
        dev: DeviceId,
        next: DeviceId,
    ) -> Verdict {
        let layout = mgr.layout().clone();
        let mut at = (**actions).clone();
        let a = at.fwd(next);
        let r = Rule::new(Match::dst_prefix(&layout, 0x10, 8), 1, a);
        mgr.submit(dev, [RuleUpdate::insert(r)]);
        mgr.flush();
        let (engine, pat, model) = mgr.parts_mut();
        v.on_model_update(engine, pat, model, &[dev])
    }

    #[test]
    fn early_unsatisfied_detection() {
        // Figure 4(b): after S forwards to A and both A and B bypass the
        // waypoints, the requirement fails before W, Y, C, D report.
        let (topo, m) = fig3();
        let (mut v, mut mgr, actions) = setup(&topo, &m);
        let r1 = sync_device(&mut v, &mut mgr, &actions, m["S"], m["A"]);
        assert_eq!(r1, Verdict::Unknown, "one node is not enough");
        let r2 = sync_device(&mut v, &mut mgr, &actions, m["B"], m["E"]);
        assert_eq!(r2, Verdict::Unknown, "packets could still detour via W");
        // Update 2 of Figure 4(b): A bounces back to S. Every walk from S
        // now oscillates S↔A and can never reach W, Y or D → violated no
        // matter what E, C, D, W, Y do.
        let r3 = sync_device(&mut v, &mut mgr, &actions, m["A"], m["S"]);
        assert_eq!(r3, Verdict::Unsatisfied);
    }

    #[test]
    fn early_satisfied_detection() {
        // S→W→C→D satisfies the waypoint; once those four devices are
        // synchronized the verdict is Satisfied even though A, B, E, Y
        // never reported.
        let (topo, m) = fig3();
        let (mut v, mut mgr, actions) = setup(&topo, &m);
        assert_eq!(
            sync_device(&mut v, &mut mgr, &actions, m["S"], m["W"]),
            Verdict::Unknown
        );
        assert_eq!(
            sync_device(&mut v, &mut mgr, &actions, m["W"], m["C"]),
            Verdict::Unknown
        );
        let verdict = sync_device(&mut v, &mut mgr, &actions, m["C"], m["D"]);
        // D itself must be synchronized for the path to be final (its
        // delivery matters). Sync D with a drop (local delivery).
        if verdict != Verdict::Satisfied {
            let layout = mgr.layout().clone();
            let r = Rule::new(
                Match::dst_prefix(&layout, 0x10, 8),
                1,
                flash_netmodel::ACTION_DROP,
            );
            mgr.submit(m["D"], [RuleUpdate::insert(r)]);
            mgr.flush();
            let (engine, pat, model) = mgr.parts_mut();
            let verdict = v.on_model_update(engine, pat, model, &[m["D"]]);
            assert_eq!(verdict, Verdict::Satisfied);
        }
    }

    #[test]
    fn ec_split_inherits_pruning() {
        // Synchronize S to W for half the space, then split the space on
        // A's action: the child ECs must inherit S's pruning without
        // touching S again.
        let (topo, m) = fig3();
        let (mut v, mut mgr, actions) = setup(&topo, &m);
        sync_device(&mut v, &mut mgr, &actions, m["S"], m["A"]);
        let splits_before = v.stats.splits;
        // A forwards half the requirement space to B, (implicit default
        // drop for the other half) → the model splits the EC.
        let layout = mgr.layout().clone();
        let mut at = (*actions).clone();
        let ab = at.fwd(m["B"]);
        let r = Rule::new(Match::dst_prefix(&layout, 0x10, 8), 1, ab);
        // Only a sub-prefix:
        let sub = Rule::new(Match::dst_prefix(&layout, 0x10, 8), 2, ab);
        let _ = r;
        mgr.submit(m["A"], [RuleUpdate::insert(sub)]);
        mgr.flush();
        let (engine, pat, model) = mgr.parts_mut();
        v.on_model_update(engine, pat, model, &[m["A"]]);
        assert!(v.stats.splits >= splits_before, "split accounting");
    }

    #[test]
    fn drop_action_prunes_everything() {
        let (topo, m) = fig3();
        let (mut v, mut mgr, actions) = setup(&topo, &m);
        // S drops (no explicit rule) but IS synchronized → unsatisfied.
        let layout = mgr.layout().clone();
        let r = Rule::new(
            Match::dst_prefix(&layout, 0x10, 8),
            1,
            flash_netmodel::ACTION_DROP,
        );
        mgr.submit(m["S"], [RuleUpdate::insert(r)]);
        mgr.flush();
        let (engine, pat, model) = mgr.parts_mut();
        let verdict = v.on_model_update(engine, pat, model, &[m["S"]]);
        let _ = actions;
        assert_eq!(verdict, Verdict::Unsatisfied);
    }

    #[test]
    fn cover_requirement_detects_missing_branch() {
        // Requirement: BOTH S→A…D and S→W…D families must be present
        // (`cover S (A|W) .* D`). If S forwards only toward A, a valid
        // path family is missing → consistent violation at S alone.
        let (topo, m) = fig3();
        let layout = HeaderLayout::new(&[("dst", 8)]);
        let mut actions = ActionTable::new();
        for d in topo.devices() {
            actions.fwd(d);
        }
        // ECMP S→{A,W} for the covering case.
        let both = actions.ecmp(vec![m["A"], m["W"]]);
        let actions = Arc::new(actions);
        let mut mgr = ModelManager::new(ModelManagerConfig::whole_space(layout.clone()));
        let req = Requirement::new(
            "cover-both",
            Match::dst_prefix(&layout, 0x10, 8),
            vec![m["S"]],
            parse_path_expr("S (A|W) .* D").unwrap(),
        )
        .with_cover();
        let mut v = RegexVerifier::new(
            topo.clone(),
            actions.clone(),
            req,
            vec![],
            mgr.engine_mut(),
            &layout,
        );
        // S forwards only to A → missing the W branch.
        let only_a = flash_netmodel::ActionId(2); // A interned second (after drop, S)
        let r = Rule::new(Match::dst_prefix(&layout, 0x10, 8), 1, only_a);
        mgr.submit(m["S"], [RuleUpdate::insert(r)]);
        mgr.flush();
        let (engine, pat, model) = mgr.parts_mut();
        assert_eq!(
            v.on_model_update(engine, pat, model, &[m["S"]]),
            Verdict::Unsatisfied
        );

        // Fresh verifier: S uses ECMP over both branches → not yet
        // decided (downstream devices still unknown).
        let mut mgr2 = ModelManager::new(ModelManagerConfig::whole_space(layout.clone()));
        let req2 = Requirement::new(
            "cover-both",
            Match::dst_prefix(&layout, 0x10, 8),
            vec![m["S"]],
            parse_path_expr("S (A|W) .* D").unwrap(),
        )
        .with_cover();
        let mut v2 = RegexVerifier::new(
            topo.clone(),
            actions.clone(),
            req2,
            vec![],
            mgr2.engine_mut(),
            &layout,
        );
        let r2 = Rule::new(Match::dst_prefix(&layout, 0x10, 8), 1, both);
        mgr2.submit(m["S"], [RuleUpdate::insert(r2)]);
        mgr2.flush();
        let (engine2, pat2, model2) = mgr2.parts_mut();
        assert_eq!(
            v2.on_model_update(engine2, pat2, model2, &[m["S"]]),
            Verdict::Unknown
        );
    }

    #[test]
    fn anycast_combination_rules() {
        use Verdict::*;
        assert_eq!(
            RegexVerifier::combine_anycast(&[Satisfied, Unsatisfied, Unsatisfied]),
            Satisfied
        );
        assert_eq!(
            RegexVerifier::combine_anycast(&[Satisfied, Satisfied, Unsatisfied]),
            Unsatisfied
        );
        assert_eq!(
            RegexVerifier::combine_anycast(&[Unsatisfied, Unsatisfied]),
            Unsatisfied
        );
        assert_eq!(
            RegexVerifier::combine_anycast(&[Satisfied, Unknown]),
            Unknown
        );
    }

    #[test]
    fn multicast_combination_rules() {
        use Verdict::*;
        assert_eq!(
            RegexVerifier::combine_multicast(&[Satisfied, Satisfied]),
            Satisfied
        );
        assert_eq!(
            RegexVerifier::combine_multicast(&[Satisfied, Unsatisfied]),
            Unsatisfied
        );
        assert_eq!(
            RegexVerifier::combine_multicast(&[Satisfied, Unknown]),
            Unknown
        );
    }
}
