//! Rewrite-aware verification — the §7 "Data Plane Models" extension.
//!
//! The baseline Flash model assumes packets are forwarded by header only,
//! with no header rewrites. Tunnels and NAT break that: a rewriting
//! device moves the packet into a *different* equivalence class. Per the
//! first direction discussed in §7 (following APKeep's transformer
//! handling), the invariant kept here is that a rewritten packet set
//! belongs to a well-defined set of ECs before and after the rewrite —
//! the traversal simply follows the transformed predicate into the new
//! classes.
//!
//! State space: `(device, EC index)` pairs. At a non-rewriting device the
//! EC is stable (that is the whole point of the equivalence classes); at
//! a [`flash_netmodel::Action::Tunnel`] device the class predicate is
//! transformed with [`flash_bdd::PredEngine::rewrite_field`] and
//! re-classified.

use flash_bdd::{Pred, PredEngine};
use flash_imt::{InverseModel, PatStore};
use flash_netmodel::{ActionTable, DeviceId, HeaderLayout, Topology};
use std::collections::HashSet;
use std::sync::Arc;

/// Rewrite-aware reachability and loop checking over an inverse model.
pub struct RewriteTraversal {
    topo: Arc<Topology>,
    actions: Arc<ActionTable>,
    layout: HeaderLayout,
}

impl RewriteTraversal {
    pub fn new(topo: Arc<Topology>, actions: Arc<ActionTable>, layout: HeaderLayout) -> Self {
        RewriteTraversal {
            topo,
            actions,
            layout,
        }
    }

    /// Finds the model entries whose predicate intersects `pred`.
    fn classify_all(&self, engine: &mut PredEngine, model: &InverseModel, pred: &Pred) -> Vec<usize> {
        // Class predicates are pairwise disjoint, so matched classes can
        // be subtracted from the query; once the remainder is empty no
        // later class can intersect and the scan stops early.
        let mut remaining = pred.clone();
        let mut out = Vec::new();
        for (i, e) in model.entries().iter().enumerate() {
            if remaining.is_false() {
                break;
            }
            let inter = engine.and(&e.pred, &remaining);
            if inter.is_false() {
                continue;
            }
            out.push(i);
            remaining = engine.diff(&remaining, &inter);
        }
        out
    }

    /// Can packets whose headers satisfy `initial` reach any device in
    /// `dests` from `src`, following forwarding actions *including*
    /// header rewrites?
    #[allow(clippy::too_many_arguments)]
    pub fn reachable(
        &self,
        engine: &mut PredEngine,
        pat: &PatStore,
        model: &InverseModel,
        initial: &Pred,
        src: DeviceId,
        dests: &[DeviceId],
    ) -> bool {
        let mut seen: HashSet<(DeviceId, usize)> = HashSet::new();
        let mut stack: Vec<(DeviceId, usize)> = Vec::new();
        for ec in self.classify_all(engine, model, initial) {
            stack.push((src, ec));
        }
        while let Some((dev, ec)) = stack.pop() {
            if !seen.insert((dev, ec)) {
                continue;
            }
            if dests.contains(&dev) {
                return true;
            }
            let act_id = pat.get(model.entries()[ec].vector, dev);
            let act = self.actions.get(act_id).clone();
            match act.rewrite() {
                None => {
                    for &nh in act.next_hops() {
                        stack.push((nh, ec));
                    }
                }
                Some(rw) => {
                    // Transform the class predicate and re-classify.
                    let spec = self.layout.field(flash_netmodel::FieldId(rw.field));
                    let pred = model.entries()[ec].pred.clone();
                    let rewritten = engine.rewrite_field(&pred, spec.offset, spec.width, rw.value);
                    for new_ec in self.classify_all(engine, model, &rewritten) {
                        for &nh in act.next_hops() {
                            stack.push((nh, new_ec));
                        }
                    }
                }
            }
        }
        false
    }

    /// Detects a forwarding loop in `(device, EC)` space: a packet that
    /// revisits a device *in the same class* loops forever; a packet that
    /// revisits a device in a different class may still terminate (e.g.
    /// tunnel stacking), so only same-class cycles are reported.
    ///
    /// Returns one witness cycle of devices.
    pub fn find_loop(
        &self,
        engine: &mut PredEngine,
        pat: &PatStore,
        model: &InverseModel,
    ) -> Option<Vec<DeviceId>> {
        // DFS with an on-path set over (device, ec).
        let n_ecs = model.entries().len();
        let mut done: HashSet<(DeviceId, usize)> = HashSet::new();
        for start in self.topo.devices() {
            for ec in 0..n_ecs {
                if done.contains(&(start, ec)) {
                    continue;
                }
                let mut path: Vec<(DeviceId, usize)> = Vec::new();
                let mut on_path: HashSet<(DeviceId, usize)> = HashSet::new();
                if let Some(cycle) = self.dfs_loop(
                    engine,
                    pat,
                    model,
                    (start, ec),
                    &mut path,
                    &mut on_path,
                    &mut done,
                ) {
                    return Some(cycle);
                }
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_loop(
        &self,
        engine: &mut PredEngine,
        pat: &PatStore,
        model: &InverseModel,
        state: (DeviceId, usize),
        path: &mut Vec<(DeviceId, usize)>,
        on_path: &mut HashSet<(DeviceId, usize)>,
        done: &mut HashSet<(DeviceId, usize)>,
    ) -> Option<Vec<DeviceId>> {
        if on_path.contains(&state) {
            let pos = path.iter().position(|&s| s == state).unwrap();
            return Some(path[pos..].iter().map(|(d, _)| *d).collect());
        }
        if done.contains(&state) {
            return None;
        }
        path.push(state);
        on_path.insert(state);
        let (dev, ec) = state;
        let act_id = pat.get(model.entries()[ec].vector, dev);
        let act = self.actions.get(act_id).clone();
        let successors: Vec<(DeviceId, usize)> = match act.rewrite() {
            None => act.next_hops().iter().map(|&nh| (nh, ec)).collect(),
            Some(rw) => {
                let spec = self.layout.field(flash_netmodel::FieldId(rw.field));
                let pred = model.entries()[ec].pred.clone();
                let rewritten = engine.rewrite_field(&pred, spec.offset, spec.width, rw.value);
                let ecs = self.classify_all(engine, model, &rewritten);
                act.next_hops()
                    .iter()
                    .flat_map(|&nh| ecs.iter().map(move |&e| (nh, e)))
                    .collect()
            }
        };
        for s in successors {
            if let Some(c) = self.dfs_loop(engine, pat, model, s, path, on_path, done) {
                return Some(c);
            }
        }
        path.pop();
        on_path.remove(&state);
        done.insert(state);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_imt::{ModelManager, ModelManagerConfig};
    use flash_netmodel::{Action, FieldId, HeaderLayout, Match, Rule, RuleUpdate};

    /// 3 devices in a line: a — b — c. Two 4-bit header fields: dst and a
    /// "label" field used by the tunnel.
    fn setup() -> (
        Arc<Topology>,
        Vec<DeviceId>,
        flash_netmodel::ActionTable,
        HeaderLayout,
        ModelManager,
    ) {
        let mut t = Topology::new();
        let a = t.add_device("a");
        let b = t.add_device("b");
        let c = t.add_device("c");
        t.add_bilink(a, b);
        t.add_bilink(b, c);
        t.add_bilink(a, c);
        let layout = HeaderLayout::new(&[("dst", 4), ("label", 4)]);
        let at = flash_netmodel::ActionTable::new();
        let mgr = ModelManager::new(ModelManagerConfig::whole_space(layout.clone()));
        (Arc::new(t), vec![a, b, c], at, layout, mgr)
    }

    #[test]
    fn tunnel_reachability_follows_the_rewrite() {
        let (topo, ids, mut at, layout, mut mgr) = setup();
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        // a: label 0 → tunnel to b, setting label to 7.
        let t_ab = at.intern(Action::tunnel(b, 1, 7));
        // b: forwards label 7 to c, drops label 0.
        let fwd_c = at.fwd(c);
        let m_label0 = Match::any(&layout).with(FieldId(1), flash_netmodel::MatchKind::Exact(0));
        let m_label7 = Match::any(&layout).with(FieldId(1), flash_netmodel::MatchKind::Exact(7));
        mgr.submit(a, [RuleUpdate::insert(Rule::new(m_label0, 1, t_ab))]);
        mgr.submit(b, [RuleUpdate::insert(Rule::new(m_label7, 1, fwd_c))]);
        mgr.flush();

        let tr = RewriteTraversal::new(topo, Arc::new(at), layout.clone());
        let (engine, pat, model) = mgr.parts_mut();
        let initial = m_label0.to_pred(&layout, engine);
        // Without rewrite-awareness the packet would be dropped at b
        // (label 0 has no rule there); with it, the tunnel relabels to 7
        // and b forwards to c.
        assert!(tr.reachable(engine, pat, model, &initial, a, &[c]));
        // Packets already labelled 7 entering at a are dropped at a.
        let initial7 = m_label7.to_pred(&layout, engine);
        assert!(!tr.reachable(engine, pat, model, &initial7, a, &[c]));
    }

    #[test]
    fn plain_forwarding_unchanged_by_rewrite_traversal() {
        let (topo, ids, mut at, layout, mut mgr) = setup();
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        let fwd_b = at.fwd(b);
        let fwd_c = at.fwd(c);
        let m = Match::dst_prefix(&layout, 0b1010, 4);
        mgr.submit(a, [RuleUpdate::insert(Rule::new(m, 1, fwd_b))]);
        mgr.submit(b, [RuleUpdate::insert(Rule::new(m, 1, fwd_c))]);
        mgr.flush();
        let tr = RewriteTraversal::new(topo, Arc::new(at), layout.clone());
        let (engine, pat, model) = mgr.parts_mut();
        let initial = m.to_pred(&layout, engine);
        assert!(tr.reachable(engine, pat, model, &initial, a, &[c]));
        assert!(!tr.reachable(engine, pat, model, &initial, c, &[a]));
    }

    #[test]
    fn rewrite_loop_detected_in_class_space() {
        let (topo, ids, mut at, layout, mut mgr) = setup();
        let (a, b, _) = (ids[0], ids[1], ids[2]);
        // a tunnels label0→label7 toward b; b tunnels label7→label0 back
        // toward a: the packet oscillates a↔b forever, changing class
        // each hop — but revisits (a, label0-class): a genuine loop.
        let t_ab = at.intern(Action::tunnel(b, 1, 7));
        let t_ba = at.intern(Action::tunnel(a, 1, 0));
        let m0 = Match::any(&layout).with(FieldId(1), flash_netmodel::MatchKind::Exact(0));
        let m7 = Match::any(&layout).with(FieldId(1), flash_netmodel::MatchKind::Exact(7));
        mgr.submit(a, [RuleUpdate::insert(Rule::new(m0, 1, t_ab))]);
        mgr.submit(b, [RuleUpdate::insert(Rule::new(m7, 1, t_ba))]);
        mgr.flush();
        let tr = RewriteTraversal::new(topo, Arc::new(at), layout.clone());
        let (engine, pat, model) = mgr.parts_mut();
        let cycle = tr.find_loop(engine, pat, model).expect("tunnel ping-pong loops");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn tunnel_unstacking_is_not_a_loop() {
        let (topo, ids, mut at, layout, mut mgr) = setup();
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        // a tunnels (sets label 7) to b; b pops the tunnel (sets label 0)
        // and forwards to c; c delivers (drop). No same-class revisit.
        let t_ab = at.intern(Action::tunnel(b, 1, 7));
        let t_bc = at.intern(Action::tunnel(c, 1, 0));
        let m0 = Match::any(&layout).with(FieldId(1), flash_netmodel::MatchKind::Exact(0));
        let m7 = Match::any(&layout).with(FieldId(1), flash_netmodel::MatchKind::Exact(7));
        mgr.submit(a, [RuleUpdate::insert(Rule::new(m0, 1, t_ab))]);
        mgr.submit(b, [RuleUpdate::insert(Rule::new(m7, 1, t_bc))]);
        mgr.flush();
        let tr = RewriteTraversal::new(topo, Arc::new(at), layout.clone());
        let (engine, pat, model) = mgr.parts_mut();
        assert!(tr.find_loop(engine, pat, model).is_none());
        // And the packet reaches c.
        let m0p = {
            let m = Match::any(&layout).with(FieldId(1), flash_netmodel::MatchKind::Exact(0));
            m.to_pred(&layout, engine)
        };
        assert!(tr.reachable(engine, pat, model, &m0p, a, &[c]));
    }
}
