//! Equivalence of the overlap-indexed fast paths against their retained
//! linear references, on randomized workloads:
//!
//! * a fully optimized [`ModelManager`] (overlap index + match memo +
//!   adaptive shadows) against one with every optimization disabled, on
//!   the same insert/delete churn stream with forced mid-stream GC;
//! * indexed [`InverseModel::apply_overwrite`] against the index-free
//!   [`InverseModel::apply_overwrite_linear`] scan on random overwrite
//!   streams, across forced engine collections and index rebuilds.
//!
//! "Equivalent" is byte-exact: identical class-key fingerprint sets, not
//! merely equal class counts.

use flash_bdd::PredEngine;
use flash_imt::{
    ImtTuning, InverseModel, ModelManager, ModelManagerConfig, Overwrite, PatStore,
    ShadowStrategy,
};
use flash_netmodel::{ActionId, DeviceId, HeaderLayout, Match, Rule, RuleUpdate};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_rule(rng: &mut StdRng, layout: &HeaderLayout) -> Rule {
    let len = rng.gen_range(1u32..=12);
    let value = (rng.gen_range(0u64..1 << 12) >> (12 - len)) << (12 - len);
    let action = ActionId(rng.gen_range(1u32..6));
    Rule::new(Match::dst_prefix(layout, value, len), len as i64, action)
}

/// Random insert/delete churn: ~60% fresh inserts, ~40% deletes of
/// currently installed rules, spread over `devs` devices.
fn churn_stream(
    layout: &HeaderLayout,
    devs: u32,
    steps: usize,
    seed: u64,
) -> Vec<(DeviceId, RuleUpdate)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut installed: Vec<(DeviceId, Rule)> = Vec::new();
    let mut out = Vec::new();
    for _ in 0..steps {
        if installed.is_empty() || rng.gen_range(0u32..10) < 6 {
            let d = DeviceId(rng.gen_range(0u32..devs));
            let r = random_rule(&mut rng, layout);
            installed.push((d, r));
            out.push((d, RuleUpdate::insert(r)));
        } else {
            let i = rng.gen_range(0usize..installed.len());
            let (d, r) = installed.swap_remove(i);
            out.push((d, RuleUpdate::delete(r)));
        }
    }
    out
}

#[test]
fn indexed_manager_matches_linear_manager_on_random_churn() {
    let layout = HeaderLayout::new(&[("dst", 12)]);
    let fast_cfg = ModelManagerConfig {
        gc_node_threshold: 2048,
        ..ModelManagerConfig::whole_space(layout.clone())
    };
    let slow_cfg = ModelManagerConfig {
        tuning: ImtTuning {
            match_memo_capacity: 0,
            shadow_strategy: ShadowStrategy::Accumulated,
            class_index: false,
        },
        ..fast_cfg.clone()
    };
    let mut fast = ModelManager::new(fast_cfg);
    let mut slow = ModelManager::new(slow_cfg);

    let stream = churn_stream(&layout, 8, 1200, 0xD1CE_2024);
    for (chunk_no, chunk) in stream.chunks(48).enumerate() {
        for (d, u) in chunk {
            fast.submit(*d, [*u]);
            slow.submit(*d, [*u]);
        }
        fast.flush();
        slow.flush();
        if chunk_no % 5 == 4 {
            // Forced mark-sweep: rooted model predicates must survive and
            // the rebuilt-on-demand index must stay consistent.
            fast.gc();
            slow.gc();
        }
        assert_eq!(
            fast.model().len(),
            slow.model().len(),
            "class count diverged after chunk {chunk_no}"
        );
        let mut fk = fast.class_keys();
        let mut sk = slow.class_keys();
        fk.sort_unstable();
        sk.sort_unstable();
        assert_eq!(fk, sk, "class fingerprints diverged after chunk {chunk_no}");
    }

    // Make sure the run actually exercised the optimized paths.
    let fs = fast.stats();
    let ss = slow.stats();
    assert!(fs.classes_pruned > 0, "overlap index never pruned a class");
    assert!(fs.match_memo_hits > 0, "match memo never hit");
    assert!(
        fs.shadow_acc_blocks + fs.shadow_trie_blocks > 0,
        "no shadow strategy recorded"
    );
    assert_eq!(ss.classes_probed, 0, "disabled index must not probe");
    assert_eq!(ss.match_memo_hits + ss.match_memo_misses, 0, "disabled memo must not count");
    assert_eq!(ss.shadow_trie_blocks, 0, "forced accumulated must never pick the trie");

    let (engine, _, model) = fast.parts_mut();
    model.check_invariants(engine).unwrap();
}

#[test]
fn indexed_overwrites_match_linear_reference_across_collect_and_rebuild() {
    let mut e = PredEngine::new(10);
    let mut pat = PatStore::new();
    let mut indexed = InverseModel::new(e.true_pred());
    let mut linear = InverseModel::new(e.true_pred());
    linear.set_index_enabled(false);

    let mut rng = StdRng::seed_from_u64(0x0AB5_EED5);
    for step in 0..220usize {
        let len = rng.gen_range(1u32..=8);
        let value = (rng.gen_range(0u64..1 << 10) >> (10 - len)) << (10 - len);
        let p = e.prefix(0, 10, value, len);
        let writes = (0..rng.gen_range(1usize..4))
            .map(|_| (DeviceId(rng.gen_range(0u32..6)), ActionId(rng.gen_range(0u32..5))))
            .collect();
        let ow = Overwrite { pred: p, writes };
        indexed.apply_overwrite(&mut e, &mut pat, &ow);
        linear.apply_overwrite_linear(&mut e, &mut pat, &ow);

        if step % 37 == 36 {
            e.collect();
        }
        if step % 53 == 52 {
            indexed.rebuild_index(&mut e);
        }
        if step % 20 == 19 {
            let fp = |m: &InverseModel| {
                let mut keys: Vec<(u64, Vec<(u32, u32)>)> = m
                    .entries()
                    .iter()
                    .map(|en| {
                        (
                            e.sat_count(&en.pred) as u64,
                            pat.entries(en.vector)
                                .into_iter()
                                .map(|(d, a)| (d.0, a.0))
                                .collect(),
                        )
                    })
                    .collect();
                keys.sort();
                keys
            };
            assert_eq!(fp(&indexed), fp(&linear), "models diverged at step {step}");
            indexed.check_invariants(&mut e).unwrap();
            linear.check_invariants(&mut e).unwrap();
        }
    }
    assert!(indexed.has_index(), "indexed model lost its index");
    assert!(indexed.index_stats().pruned > 0, "index never pruned");
    assert!(!linear.has_index(), "linear model must never build an index");
}
