//! Regression pin for the kernelized MR² map step: the batched
//! `or_many`/`diff_or` rewrites of `calculate_atomic_overwrites` (and its
//! trie-assisted variant) must produce overwrites identical — same order,
//! same `(device, action)` writes, same hash-consed predicate handles —
//! to the original one-binary-`or`-per-rule fold, on a randomized
//! 1000-rule FIB hit by a 100-update mixed insert/delete block.

use flash_bdd::{Pred, PredEngine};
use flash_imt::mr2::{
    build_rule_trie, calculate_atomic_overwrites, calculate_atomic_overwrites_trie,
    cancel_updates, merge_block_and_diff,
};
use flash_imt::{AtomicOverwrite, MatchMemo};
use flash_netmodel::fib::rule_cmp;
use flash_netmodel::{
    ActionId, DeviceId, Fib, HeaderLayout, Match, Rule, RuleUpdate,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashSet;

/// The pre-kernel reference: accumulate the shadow union with one binary
/// `or` per skipped rule and subtract it with one binary `diff`. This is
/// the fold `calculate_atomic_overwrites` used before the n-ary kernels.
fn fold_reference(
    engine: &mut PredEngine,
    layout: &HeaderLayout,
    device: DeviceId,
    fib: &Fib,
    diff: &[Rule],
) -> Vec<AtomicOverwrite> {
    let rules = fib.rules();
    let mut out = Vec::with_capacity(diff.len());
    let mut p = engine.false_pred();
    let mut ri = 0usize;
    for rd in diff {
        while ri < rules.len() && rule_cmp(&rules[ri], rd) == std::cmp::Ordering::Less {
            let m = rules[ri].mat.to_pred(layout, engine);
            p = engine.or(&p, &m);
            ri += 1;
        }
        let m = rd.mat.to_pred(layout, engine);
        let eff = engine.diff(&m, &p);
        if !eff.is_false() {
            out.push(AtomicOverwrite {
                pred: eff,
                device,
                action: rd.action,
            });
        }
    }
    out
}

fn random_rule(rng: &mut StdRng, layout: &HeaderLayout) -> (u64, u32, Rule) {
    let len = rng.gen_range(1u32..=16);
    let value = (rng.gen_range(0u64..1 << 16) >> (16 - len)) << (16 - len);
    let action = ActionId(rng.gen_range(1u32..8));
    (
        value,
        len,
        Rule::new(Match::dst_prefix(layout, value, len), len as i64, action),
    )
}

fn assert_identical(kind: &str, got: &[AtomicOverwrite], want: &[AtomicOverwrite]) {
    assert_eq!(got.len(), want.len(), "{kind}: overwrite count diverged");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.device, w.device, "{kind}: device of overwrite {i}");
        assert_eq!(g.action, w.action, "{kind}: action of overwrite {i}");
        // Pred equality is node identity in the hash-consed engine, so this
        // pins bit-exact predicate agreement, not just logical equivalence.
        assert_eq!(g.pred, w.pred, "{kind}: predicate of overwrite {i}");
    }
}

#[test]
fn kernelized_overwrites_match_binary_fold_on_random_block() {
    let layout = HeaderLayout::new(&[("dst", 16)]);
    let mut engine = PredEngine::new(layout.total_bits());
    let device = DeviceId(7);
    let mut rng = StdRng::seed_from_u64(0xF1A5_4001);

    // Seed FIB: 1000 distinct random prefix rules on one device.
    let mut seen: HashSet<(u64, u32)> = HashSet::new();
    let mut installed: Vec<Rule> = Vec::new();
    let mut seed_block: Vec<RuleUpdate> = Vec::new();
    while installed.len() < 1000 {
        let (value, len, rule) = random_rule(&mut rng, &layout);
        if !seen.insert((value, len)) {
            continue;
        }
        installed.push(rule);
        seed_block.push(RuleUpdate::insert(rule));
    }
    let mut fib = Fib::new(&layout);
    merge_block_and_diff(&mut fib, &seed_block);
    // 1000 random rules + the FIB's built-in default wildcard.
    assert_eq!(fib.rules().len(), 1001);

    // A 100-update block: ~60 fresh inserts, ~40 deletes of installed
    // rules (deletes make lower-priority survivors expand, exercising the
    // cursor/suffix path, not just the new-rule path).
    let mut block: Vec<RuleUpdate> = Vec::new();
    while block.len() < 100 {
        if block.len() % 5 < 3 {
            let (value, len, rule) = random_rule(&mut rng, &layout);
            if !seen.insert((value, len)) {
                continue;
            }
            block.push(RuleUpdate::insert(rule));
        } else if !installed.is_empty() {
            let pos = rng.gen_range(0usize..installed.len());
            block.push(RuleUpdate::delete(installed.swap_remove(pos)));
        }
    }
    let block = cancel_updates(&block);
    let diff = {
        let res = merge_block_and_diff(&mut fib, &block);
        res.diff
    };
    assert!(!diff.is_empty(), "block must produce expanding rules");

    let clip: Pred = engine.true_pred();
    let want = fold_reference(&mut engine, &layout, device, &fib, &diff);
    let got = calculate_atomic_overwrites(
        &mut engine,
        &layout,
        device,
        &fib,
        &diff,
        &clip,
        &mut MatchMemo::disabled(),
    );
    assert_identical("or_many kernel", &got, &want);

    // And again with a live memo: the cached clipped predicates must be the
    // identical hash-consed nodes, not merely equivalent ones.
    let mut memo = MatchMemo::new(4096);
    let got_memo =
        calculate_atomic_overwrites(&mut engine, &layout, device, &fib, &diff, &clip, &mut memo);
    assert_identical("memoized kernel", &got_memo, &want);

    let trie = build_rule_trie(&layout, &fib);
    let got_trie = calculate_atomic_overwrites_trie(
        &mut engine,
        &layout,
        device,
        &trie,
        &diff,
        &clip,
        &mut memo,
    );
    assert_identical("diff_or trie kernel", &got_trie, &want);
}
