//! Property-based tests of the Fast IMT stack: the persistent action tree
//! against a map oracle, and MR² block processing against per-update
//! processing on arbitrary workloads.

#![cfg(feature = "proptest")]

use flash_imt::{ModelManager, ModelManagerConfig, PatStore, PAT_NIL};
use flash_netmodel::{
    ActionId, ActionTable, DeviceId, HeaderLayout, Match, Rule, RuleUpdate, ACTION_DROP,
};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// PAT vs HashMap oracle.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum PatOp {
    Set(u32, u32),
    Remove(u32),
    Overwrite(Vec<(u32, u32)>),
}

fn arb_pat_op() -> impl Strategy<Value = PatOp> {
    prop_oneof![
        (0u32..32, 1u32..8).prop_map(|(d, a)| PatOp::Set(d, a)),
        (0u32..32).prop_map(PatOp::Remove),
        proptest::collection::vec((0u32..32, 0u32..8), 1..6).prop_map(PatOp::Overwrite),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pat_matches_hashmap_oracle(ops in proptest::collection::vec(arb_pat_op(), 0..60)) {
        let mut pat = PatStore::new();
        let mut t = PAT_NIL;
        let mut oracle: HashMap<u32, u32> = HashMap::new();
        for op in ops {
            match op {
                PatOp::Set(d, a) => {
                    t = pat.set(t, DeviceId(d), ActionId(a));
                    oracle.insert(d, a);
                }
                PatOp::Remove(d) => {
                    t = pat.remove(t, DeviceId(d));
                    oracle.remove(&d);
                }
                PatOp::Overwrite(writes) => {
                    let w: Vec<(DeviceId, ActionId)> = writes
                        .iter()
                        .map(|&(d, a)| (DeviceId(d), ActionId(a)))
                        .collect();
                    t = pat.overwrite(t, &w);
                    for (d, a) in writes {
                        if a == 0 {
                            oracle.remove(&d);
                        } else {
                            oracle.insert(d, a);
                        }
                    }
                }
            }
            // Full agreement after every step.
            for d in 0u32..32 {
                let expect = oracle.get(&d).copied().unwrap_or(ACTION_DROP.0);
                prop_assert_eq!(pat.get(t, DeviceId(d)).0, expect, "device {}", d);
            }
            prop_assert_eq!(pat.weight(t), oracle.len());
        }
        // Canonical form: rebuilding from entries gives the same id.
        let entries = pat.entries(t);
        let rebuilt = pat.from_entries(&entries);
        prop_assert_eq!(rebuilt, t);
    }
}

// ---------------------------------------------------------------------
// MR² block mode vs per-update mode on arbitrary prefix workloads.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct WlUpdate {
    dev: u32,
    value: u64,
    len: u32,
    prio: i64,
    action: u32,
    insert: bool,
}

fn arb_workload() -> impl Strategy<Value = Vec<WlUpdate>> {
    proptest::collection::vec(
        (0u32..4, 0u64..256, 1u32..=8, 0i64..10, 1u32..6, any::<bool>()).prop_map(
            |(dev, value, len, prio, action, insert)| WlUpdate {
                dev,
                value: (value >> (8 - len)) << (8 - len),
                len,
                prio,
                action,
                insert,
            },
        ),
        0..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_mode_equals_per_update_mode(wl in arb_workload()) {
        let layout = HeaderLayout::new(&[("dst", 8)]);
        let mut at = ActionTable::new();
        for i in 0..8u32 {
            at.fwd(DeviceId(100 + i));
        }
        // Normalize the workload into a valid update sequence: inserts of
        // unseen rules, deletes of installed ones.
        let mut installed: Vec<(u32, Rule)> = Vec::new();
        let mut seq: Vec<(DeviceId, RuleUpdate)> = Vec::new();
        for u in wl {
            let rule = Rule::new(
                Match::dst_prefix(&layout, u.value, u.len),
                u.prio,
                ActionId(u.action),
            );
            if u.insert {
                if installed
                    .iter()
                    .any(|(d, r)| *d == u.dev && r.mat == rule.mat && r.priority == rule.priority)
                {
                    continue;
                }
                installed.push((u.dev, rule));
                seq.push((DeviceId(u.dev), RuleUpdate::insert(rule)));
            } else if let Some(pos) = installed.iter().position(|(d, _)| *d == u.dev) {
                let (d, r) = installed.swap_remove(pos);
                seq.push((DeviceId(d), RuleUpdate::delete(r)));
            }
        }

        let build = |bst: usize| {
            let mut mm = ModelManager::new(ModelManagerConfig {
                bst,
                ..ModelManagerConfig::whole_space(layout.clone())
            });
            for (d, u) in &seq {
                mm.submit(*d, [*u]);
            }
            mm.flush();
            mm
        };
        let mut block = build(usize::MAX);
        let mut per = build(1);
        {
            let (bdd, _, model) = block.parts_mut();
            model.check_invariants(bdd).unwrap();
        }
        {
            let (bdd, _, model) = per.parts_mut();
            model.check_invariants(bdd).unwrap();
        }
        prop_assert_eq!(block.model().len(), per.model().len());
        // Exhaustive behavioural agreement over the 8-bit space.
        let (bb, bp, bm) = block.parts_mut();
        let (pb, pp, pm) = per.parts_mut();
        for h in 0..256u64 {
            let bits: Vec<bool> = (0..8).map(|i| (h >> (7 - i)) & 1 == 1).collect();
            let be = bm.classify(bb, &bits).unwrap();
            let pe = pm.classify(pb, &bits).unwrap();
            for d in 0..4u32 {
                prop_assert_eq!(
                    bp.get(be.vector, DeviceId(d)),
                    pp.get(pe.vector, DeviceId(d)),
                    "header {} device {}", h, d
                );
            }
        }
    }
}
