//! The MR² algorithm — the heart of Fast IMT (§3.2–§3.3, Algorithm 1).
//!
//! Pipeline for one block of native updates on one device:
//!
//! 1. **Cancel** — remove insert/delete pairs of the same rule inside the
//!    block (they are no-ops end to end).
//! 2. **Merge** (`merge_block_and_diff`) — one merge pass over the sorted
//!    FIB and the sorted block applies the updates and collects `R_diff`,
//!    the *expanding rules* (Definition 13): new rules, plus existing rules
//!    below a deleted rule's priority.
//! 3. **Map** (`calculate_atomic_overwrites`) — a second linear pass over
//!    the (now updated, sorted) FIB computes each expanding rule's
//!    effective predicate `eff = m ∧ ¬⋁(higher-priority matches)` with an
//!    accumulated disjunction, yielding the atomic overwrites `ΔM_i`.
//! 4. **Reduce I** (`reduce_by_action`) — atomic overwrites with the same
//!    `(device, action)` write merge by disjoining their predicates.
//! 5. **Reduce II** (`reduce_by_predicate`) — overwrites with the same
//!    predicate merge by combining their write sets (conflict-free by
//!    Theorem 5).
//!
//! The result is a short list of compact conflict-free overwrites that the
//! inverse model applies with its cross-product operator.
//!
//! All predicates are rooted [`Pred`] handles, so intermediate shadow
//! predicates become engine garbage the moment this pipeline drops them and
//! are reclaimed by the next automatic collection.

use crate::memo::MatchMemo;
use flash_bdd::{Pred, PredEngine};
use flash_netmodel::fib::rule_cmp;
use flash_netmodel::{
    ActionId, DeviceId, Fib, HeaderLayout, Rule, RuleOp, RuleTrie, RuleUpdate,
};
use std::collections::HashMap;

/// An atomic overwrite: set `device`'s action to `action` for the headers
/// in `pred` (the master predicate of Definition 14).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicOverwrite {
    pub pred: Pred,
    pub device: DeviceId,
    pub action: ActionId,
}

/// A compact conflict-free overwrite after both reduce steps: apply every
/// `(device, action)` write to the headers in `pred`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Overwrite {
    pub pred: Pred,
    pub writes: Vec<(DeviceId, ActionId)>,
}

/// Removes canceling updates (insert-after-delete / delete-after-insert of
/// the identical rule) from a block. Later updates win; a cancel removes
/// both halves of the pair. Returns the surviving updates in input order.
pub fn cancel_updates(block: &[RuleUpdate]) -> Vec<RuleUpdate> {
    // Net effect per rule in ONE pass: inserts count +1, deletes -1, and
    // each distinct rule remembers the position of its last op. `Rule` is a
    // packed 16-byte handle (interned match id + priority + action), so it
    // keys the map directly: equality is an integer compare and hashing
    // touches 16 bytes, never the underlying constraint vectors.
    let mut net: HashMap<Rule, (i64, usize)> = HashMap::new();
    for (pos, u) in block.iter().enumerate() {
        let delta = match u.op {
            RuleOp::Insert => 1,
            RuleOp::Delete => -1,
        };
        let e = net.entry(u.rule).or_insert((0, pos));
        e.0 += delta;
        e.1 = pos;
    }
    // Survivors: the final op of every rule with a non-zero net effect,
    // re-emitted in input order.
    let mut out: Vec<(usize, RuleUpdate)> = net
        .into_values()
        .filter(|&(net, _)| net != 0)
        .map(|(_, last_pos)| (last_pos, block[last_pos]))
        .collect();
    out.sort_unstable_by_key(|(p, _)| *p);
    out.into_iter().map(|(_, u)| u).collect()
}

/// Output of the merge phase.
pub struct MergeResult {
    /// The expanding rules, in descending priority order.
    pub diff: Vec<Rule>,
    /// The updates that actually changed the FIB, in merge order: every
    /// insert, and only the deletes whose rule was present. Consumers
    /// maintaining a mirror of the FIB (the per-device [`RuleTrie`])
    /// replay exactly this list, so ignored deletes of missing rules can
    /// never desynchronize the mirror.
    pub applied: Vec<(RuleOp, Rule)>,
}

/// Algorithm 1's `MergeBlockAndDiff`: applies the sorted update block to
/// the FIB in one merge pass and returns the expanding rules.
///
/// `fib` is mutated in place to the post-update rule set `R'`.
pub fn merge_block_and_diff(fib: &mut Fib, block: &[RuleUpdate]) -> MergeResult {
    let mut sorted: Vec<&RuleUpdate> = block.iter().collect();
    sorted.sort_by(|a, b| rule_cmp(&a.rule, &b.rule));

    let old_rules = fib.rules().to_vec();
    let mut new_rules: Vec<Rule> = Vec::with_capacity(old_rules.len() + sorted.len());
    let mut diff: Vec<Rule> = Vec::new();
    let mut applied: Vec<(RuleOp, Rule)> = Vec::new();
    let mut higher_deleted = false;

    let mut ri = 0usize; // cursor into old_rules
    let mut ui = 0usize; // cursor into sorted updates

    while ui < sorted.len() {
        let u = sorted[ui];
        // Advance past existing rules that sort before this update.
        while ri < old_rules.len() && rule_cmp(&old_rules[ri], &u.rule) == std::cmp::Ordering::Less
        {
            if higher_deleted {
                diff.push(old_rules[ri]); // may expand
            }
            new_rules.push(old_rules[ri]);
            ri += 1;
        }
        match u.op {
            RuleOp::Insert => {
                diff.push(u.rule); // new rules always expand
                new_rules.push(u.rule);
                applied.push((RuleOp::Insert, u.rule));
            }
            RuleOp::Delete => {
                // The deleted rule must be the current head of old_rules.
                if ri < old_rules.len() && old_rules[ri] == u.rule {
                    ri += 1; // skip it: deleted
                    higher_deleted = true;
                    applied.push((RuleOp::Delete, u.rule));
                }
                // A delete of a missing rule is ignored (robustness to
                // out-of-sync feeds; the paper assumes well-formed blocks).
            }
        }
        ui += 1;
    }
    // Tail of the old table.
    while ri < old_rules.len() {
        if higher_deleted {
            diff.push(old_rules[ri]);
        }
        new_rules.push(old_rules[ri]);
        ri += 1;
    }

    *fib = Fib::from_sorted(new_rules);
    diff.sort_by(rule_cmp);
    MergeResult { diff, applied }
}

/// Algorithm 1's `CalculateAtomicOverwrite`: computes the effective
/// predicate of every expanding rule with a single accumulated disjunction
/// over the updated table `R'`.
///
/// `clip` (the subspace predicate) is conjoined into every match — TRUE
/// for a whole-network model. `memo` caches the clipped match predicates
/// across blocks (pass [`MatchMemo::disabled`] for one-shot callers).
///
/// Returns the atomic overwrites for this device. The complementary
/// "no-overwrite" predicate of Algorithm 1 (L43) stays implicit: the
/// model's cross product leaves untouched header space in place.
pub fn calculate_atomic_overwrites(
    engine: &mut PredEngine,
    layout: &HeaderLayout,
    device: DeviceId,
    fib: &Fib,
    diff: &[Rule],
    clip: &Pred,
    memo: &mut MatchMemo,
) -> Vec<AtomicOverwrite> {
    let rules = fib.rules();
    let mut out = Vec::with_capacity(diff.len());
    let mut p = engine.false_pred(); // accumulated union of higher-priority matches
    // Exact cell-occupancy mask of `p`, maintained incrementally via the
    // union law `cell_mask(a ∨ b) = cell_mask(a) | cell_mask(b)`. When an
    // expanding match's mask misses every cell of `p`, the shadow
    // subtraction is provably a no-op and the disjoint-diff kernel
    // returns `m` without recursing.
    let mut p_mask = 0u64;
    let mut ri = 0usize;
    // Incremental suffix reuse: each rule's shadow extends the previous
    // one via a single batched `or` over the matches the cursor skipped,
    // instead of one binary `or` per skipped rule.
    let mut batch: Vec<Pred> = Vec::new();
    for rd in diff {
        // Advance the cursor until we reach rd's slot in R'.
        batch.clear();
        while ri < rules.len() && rule_cmp(&rules[ri], rd) == std::cmp::Ordering::Less {
            let (mp, mm) = memo.get_or_encode_with_mask(engine, layout, &rules[ri].mat, clip);
            p_mask |= mm;
            batch.push(mp);
            ri += 1;
        }
        if !batch.is_empty() {
            batch.push(p.clone());
            p = engine.or_many(&batch);
        }
        debug_assert!(
            ri < rules.len() && rules[ri] == *rd,
            "expanding rule must be present in R'"
        );
        let (m, m_mask) = memo.get_or_encode_with_mask(engine, layout, &rd.mat, clip);
        let eff = if m_mask & p_mask == 0 {
            engine.diff_assuming_disjoint(&m, &p)
        } else {
            engine.diff(&m, &p)
        };
        if !eff.is_false() {
            out.push(AtomicOverwrite {
                pred: eff,
                device,
                action: rd.action,
            });
        }
        // NOTE: rd itself is NOT folded into p here; only rules strictly
        // above the *next* diff rule are, which the cursor handles since
        // rd sorts before the next diff entry and will be consumed by the
        // while loop on the next iteration.
    }
    out
}

/// Trie-assisted variant of [`calculate_atomic_overwrites`] (§3.4, "Fast
/// Look-up for Overlapped Rules").
///
/// The accumulated-disjunction algorithm folds *every* higher-priority
/// match into the shadow predicate. When expanding rules are few and the
/// table is large, it is cheaper to compute each expanding rule's shadow
/// from only the rules whose matches *overlap* it, found through the
/// multi-dimension prefix trie. Produces exactly the same overwrites
/// (canonical BDDs: logically equal results are the identical node);
/// preferable when `|diff| · overlap degree ≪ |table|`.
///
/// The trie holds the post-merge rule set directly (the FIB's default
/// rule may be absent — it never shadows anything, sorting after every
/// real rule). Shadows are clipped like the expanding match itself:
/// `(m ∧ clip) ∖ (s ∧ clip) = (m ∧ clip) ∧ ¬s`, so the memo's clipped
/// entries are shared verbatim with the accumulated variant.
pub fn calculate_atomic_overwrites_trie(
    engine: &mut PredEngine,
    layout: &HeaderLayout,
    device: DeviceId,
    trie: &RuleTrie,
    diff: &[Rule],
    clip: &Pred,
    memo: &mut MatchMemo,
) -> Vec<AtomicOverwrite> {
    let mut out = Vec::with_capacity(diff.len());
    for rd in diff {
        // Candidate shadowing rules: overlapping AND strictly higher in
        // the total order.
        let mut shadows: Vec<Pred> = Vec::new();
        for r in trie.overlapping(&rd.mat) {
            if rule_cmp(r, rd) == std::cmp::Ordering::Less {
                shadows.push(memo.get_or_encode(engine, layout, &r.mat, clip));
            }
        }
        let m = memo.get_or_encode(engine, layout, &rd.mat, clip);
        // Fused shadow subtraction: the overlapping matches are peeled off
        // one by one with an early exit, never materializing their union.
        let eff = engine.diff_or(&m, &shadows);
        if !eff.is_false() {
            out.push(AtomicOverwrite {
                pred: eff,
                device,
                action: rd.action,
            });
        }
    }
    out
}

/// Builds the rule-level overlap trie for a FIB, skipping the built-in
/// default rule — with priority `i64::MIN` it never shadows anything and
/// would only bloat every overlap query (companion to
/// [`calculate_atomic_overwrites_trie`]).
pub fn build_rule_trie(layout: &HeaderLayout, fib: &Fib) -> RuleTrie {
    RuleTrie::from_rules(
        layout.clone(),
        fib.rules().iter().filter(|r| r.priority != i64::MIN),
    )
}

/// Reduce I — aggregation by action (Theorem 4): atomic overwrites that
/// write the same `(device, action)` merge by disjoining predicates.
pub fn reduce_by_action(
    engine: &mut PredEngine,
    atomics: &[AtomicOverwrite],
) -> Vec<AtomicOverwrite> {
    // Group first, then disjoin each group with one batched `or_many`
    // instead of a left-fold of binary `or`s per colliding overwrite.
    let mut index: HashMap<(DeviceId, ActionId), usize> = HashMap::new();
    let mut groups: Vec<(DeviceId, ActionId, Vec<&Pred>)> = Vec::new();
    for a in atomics {
        match index.get(&(a.device, a.action)) {
            Some(&i) => groups[i].2.push(&a.pred),
            None => {
                index.insert((a.device, a.action), groups.len());
                groups.push((a.device, a.action, vec![&a.pred]));
            }
        }
    }
    groups
        .into_iter()
        .map(|(device, action, preds)| {
            let pred = if preds.len() == 1 {
                preds[0].clone()
            } else {
                engine.or_many(preds)
            };
            AtomicOverwrite { pred, device, action }
        })
        .collect()
}

/// Reduce II — aggregation by predicate (Theorem 5): overwrites with the
/// identical predicate (hash-consing makes this an id compare) merge their
/// write sets. Conflict-freedom holds because a device contributes at most
/// one write per predicate after Reduce I.
pub fn reduce_by_predicate(atomics: &[AtomicOverwrite]) -> Vec<Overwrite> {
    // Pred's interior mutability is only its root refcount; Eq/Hash use
    // the immutable (node, engine) ids, so it is a sound map key.
    #[allow(clippy::mutable_key_type)]
    let mut index: HashMap<Pred, usize> = HashMap::new();
    let mut out: Vec<Overwrite> = Vec::new();
    for a in atomics {
        match index.get(&a.pred) {
            Some(&i) => {
                debug_assert!(
                    !out[i].writes.iter().any(|(d, act)| *d == a.device && *act != a.action),
                    "conflicting writes aggregated under one predicate"
                );
                if !out[i].writes.iter().any(|(d, _)| *d == a.device) {
                    out[i].writes.push((a.device, a.action));
                }
            }
            None => {
                index.insert(a.pred.clone(), out.len());
                out.push(Overwrite {
                    pred: a.pred.clone(),
                    writes: vec![(a.device, a.action)],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_netmodel::{ActionTable, Match};

    fn layout() -> HeaderLayout {
        HeaderLayout::new(&[("dst", 8)])
    }

    fn rule(l: &HeaderLayout, val: u64, len: u32, prio: i64, a: ActionId) -> Rule {
        Rule::new(Match::dst_prefix(l, val, len), prio, a)
    }

    #[test]
    fn cancel_removes_insert_delete_pairs() {
        let l = layout();
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(1));
        let r = rule(&l, 0xA0, 4, 1, a1);
        let block = vec![RuleUpdate::insert(r), RuleUpdate::delete(r)];
        assert!(cancel_updates(&block).is_empty());
        // delete-then-insert also cancels (net zero)
        let block = vec![RuleUpdate::delete(r), RuleUpdate::insert(r)];
        assert!(cancel_updates(&block).is_empty());
        // unbalanced: one insert survives
        let block = vec![
            RuleUpdate::insert(r),
            RuleUpdate::delete(r),
            RuleUpdate::insert(r),
        ];
        let kept = cancel_updates(&block);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].op, RuleOp::Insert);
    }

    #[test]
    fn merge_insert_collects_new_rule_as_expanding() {
        let l = layout();
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(1));
        let mut fib = Fib::new(&l);
        let r = rule(&l, 0xA0, 4, 5, a1);
        let res = merge_block_and_diff(&mut fib, &[RuleUpdate::insert(r)]);
        assert_eq!(res.diff, vec![r]);
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.rules()[0], r);
    }

    #[test]
    fn merge_delete_marks_lower_rules_expanding() {
        let l = layout();
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(1));
        let a2 = at.fwd(DeviceId(2));
        let mut fib = Fib::new(&l);
        let high = rule(&l, 0xA0, 4, 10, a1);
        let low = rule(&l, 0xA0, 2, 5, a2);
        fib.insert(high).unwrap();
        fib.insert(low).unwrap();
        let res = merge_block_and_diff(&mut fib, &[RuleUpdate::delete(high)]);
        // Both the lower rule and the default rule may expand.
        assert_eq!(res.diff.len(), 2);
        assert_eq!(res.diff[0], low);
        assert_eq!(fib.len(), 2);
    }

    #[test]
    fn merge_mixed_block() {
        let l = layout();
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(1));
        let a2 = at.fwd(DeviceId(2));
        let mut fib = Fib::new(&l);
        let r1 = rule(&l, 0x80, 1, 10, a1);
        let r2 = rule(&l, 0x40, 2, 8, a1);
        let r3 = rule(&l, 0x20, 3, 6, a1);
        fib.insert(r1).unwrap();
        fib.insert(r2).unwrap();
        fib.insert(r3).unwrap();
        // Delete r2 and insert a new rule between r2 and r3.
        let rnew = rule(&l, 0x60, 3, 7, a2);
        let res = merge_block_and_diff(
            &mut fib,
            &[RuleUpdate::delete(r2), RuleUpdate::insert(rnew)],
        );
        // rnew expands (new); r3 and default expand (below deleted r2).
        assert_eq!(res.diff.len(), 3);
        assert!(res.diff.contains(&rnew));
        assert!(res.diff.contains(&r3));
        let prios: Vec<i64> = fib.rules().iter().map(|r| r.priority).collect();
        assert_eq!(prios, vec![10, 7, 6, i64::MIN]);
    }

    #[test]
    fn atomic_overwrites_shadowing() {
        let l = layout();
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(1));
        let a2 = at.fwd(DeviceId(2));
        let mut e = PredEngine::new(8);
        let t = e.true_pred();
        let mut fib = Fib::new(&l);
        // Existing high-priority rule shadows half of the new rule.
        let shadow = rule(&l, 0xA0, 5, 10, a1); // 10100/5
        fib.insert(shadow).unwrap();
        let newr = rule(&l, 0xA0, 4, 5, a2); // 1010/4, shadowed on its 0xA0-0xA7 half
        let res = merge_block_and_diff(&mut fib, &[RuleUpdate::insert(newr)]);
        let ows = calculate_atomic_overwrites(
            &mut e, &l, DeviceId(0), &fib, &res.diff, &t, &mut MatchMemo::disabled(),
        );
        assert_eq!(ows.len(), 1);
        assert_eq!(e.sat_count(&ows[0].pred), 8.0); // 16 - 8 shadowed
        assert_eq!(ows[0].action, a2);
    }

    #[test]
    fn fully_shadowed_rule_produces_no_overwrite() {
        let l = layout();
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(1));
        let a2 = at.fwd(DeviceId(2));
        let mut e = PredEngine::new(8);
        let t = e.true_pred();
        let mut fib = Fib::new(&l);
        fib.insert(rule(&l, 0xA0, 4, 10, a1)).unwrap();
        // New rule entirely inside the shadow, lower priority.
        let newr = rule(&l, 0xA8, 5, 5, a2);
        let res = merge_block_and_diff(&mut fib, &[RuleUpdate::insert(newr)]);
        let ows = calculate_atomic_overwrites(
            &mut e, &l, DeviceId(0), &fib, &res.diff, &t, &mut MatchMemo::disabled(),
        );
        assert!(ows.is_empty());
    }

    #[test]
    fn reduce_by_action_merges_predicates() {
        let mut e = PredEngine::new(8);
        let p1 = e.prefix(0, 8, 0xA0, 4);
        let p2 = e.prefix(0, 8, 0xB0, 4);
        let atomics = vec![
            AtomicOverwrite { pred: p1.clone(), device: DeviceId(0), action: ActionId(1) },
            AtomicOverwrite { pred: p2.clone(), device: DeviceId(0), action: ActionId(1) },
            AtomicOverwrite { pred: p1.clone(), device: DeviceId(1), action: ActionId(1) },
        ];
        let reduced = reduce_by_action(&mut e, &atomics);
        assert_eq!(reduced.len(), 2);
        let union = e.or(&p1, &p2);
        assert_eq!(reduced[0].pred, union);
    }

    #[test]
    fn reduce_by_predicate_groups_writes() {
        let mut e = PredEngine::new(8);
        let p = e.prefix(0, 8, 0xA0, 4);
        let q = e.prefix(0, 8, 0xC0, 4);
        let atomics = vec![
            AtomicOverwrite { pred: p.clone(), device: DeviceId(0), action: ActionId(1) },
            AtomicOverwrite { pred: p.clone(), device: DeviceId(1), action: ActionId(2) },
            AtomicOverwrite { pred: q.clone(), device: DeviceId(2), action: ActionId(3) },
        ];
        let ows = reduce_by_predicate(&atomics);
        assert_eq!(ows.len(), 2);
        assert_eq!(ows[0].writes.len(), 2);
        assert_eq!(ows[1].writes.len(), 1);
    }

    #[test]
    fn trie_variant_matches_accumulated_variant() {
        // Same expanding rules, same FIB → identical atomic overwrites,
        // whichever shadow-computation strategy is used.
        let l = layout();
        let mut at = ActionTable::new();
        let mut e = PredEngine::new(8);
        let t = e.true_pred();
        let mut fib = Fib::new(&l);
        // A pile of overlapping rules at various priorities.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..24u64 {
            let len = 1 + (next() % 7) as u32;
            let v = ((next() & 0xFF) >> (8 - len)) << (8 - len);
            let a = at.fwd(DeviceId(100 + (i % 4) as u32));
            let _ = fib.insert(rule(&l, v, len, (next() % 12) as i64, a));
        }
        // A block of inserts to decompose.
        let a9 = at.fwd(DeviceId(99));
        let block: Vec<RuleUpdate> = (0..6u64)
            .map(|i| RuleUpdate::insert(rule(&l, (i * 40) & 0xE0, 3, 20 + i as i64, a9)))
            .collect();
        let res = merge_block_and_diff(&mut fib, &block);
        let acc = calculate_atomic_overwrites(
            &mut e, &l, DeviceId(0), &fib, &res.diff, &t, &mut MatchMemo::disabled(),
        );
        let trie = crate::mr2::build_rule_trie(&l, &fib);
        let via_trie = calculate_atomic_overwrites_trie(
            &mut e,
            &l,
            DeviceId(0),
            &trie,
            &res.diff,
            &t,
            &mut MatchMemo::disabled(),
        );
        assert_eq!(acc.len(), via_trie.len());
        for (a, b) in acc.iter().zip(via_trie.iter()) {
            assert_eq!(a.pred, b.pred, "hash-consed predicates must be identical");
            assert_eq!(a.action, b.action);
        }
    }

    #[test]
    fn figure2_scenario() {
        // The running example of the paper (Figure 2): 3 switches, insert
        // two HTTP rules on each; after MR2 the six updates compact into
        // few overwrites and the model gains exactly one new class.
        let l = HeaderLayout::new(&[("dst", 8), ("port", 4)]);
        let mut at = ActionTable::new();
        let (s1, s2, s3) = (DeviceId(0), DeviceId(1), DeviceId(2));
        let (host_a, gw) = (DeviceId(3), DeviceId(4));
        let http = 0x8u64; // pretend port nibble 0x8 is HTTP

        let mut e = PredEngine::new(l.total_bits());
        let t = e.true_pred();
        let mut pat = crate::pat::PatStore::new();
        let mut model = crate::model::InverseModel::new(e.true_pred());
        let mut fibs = [Fib::new(&l), Fib::new(&l), Fib::new(&l)];

        // Initial data plane (Figure 2 left): S1 forwards the two subnets
        // to A, default to S3; S2 default to S1... (abridged: S1 rules only
        // matter for the class structure here).
        let a_to_a = at.fwd(host_a);
        let a_to_s3 = at.fwd(s3);
        let a_to_s1 = at.fwd(s1);
        let a_to_s2 = at.fwd(s2);
        let a_to_gw = at.fwd(gw);
        let subnet1 = Match::dst_prefix(&l, 0x10, 8); // "10.0.1.0/24"
        let subnet2 = Match::dst_prefix(&l, 0x20, 8); // "10.0.2.0/24"

        let init: Vec<(usize, Rule)> = vec![
            (0, Rule::new(subnet1, 2, a_to_a)),
            (0, Rule::new(subnet2, 1, a_to_a)),
            (0, Rule::new(Match::any(&l), 0, a_to_s3)),
            (1, Rule::new(Match::any(&l), 0, a_to_s1)),
            (2, Rule::new(subnet1, 2, a_to_s1)),
            (2, Rule::new(subnet2, 1, a_to_s1)),
            (2, Rule::new(Match::any(&l), 0, a_to_gw)),
        ];
        for (dev, r) in init {
            let block = vec![RuleUpdate::insert(r)];
            let res = merge_block_and_diff(&mut fibs[dev], &block);
            let ows = calculate_atomic_overwrites(
                &mut e, &l, DeviceId(dev as u32), &fibs[dev], &res.diff, &t,
                &mut MatchMemo::disabled(),
            );
            let ows = reduce_by_action(&mut e, &ows);
            let ows = reduce_by_predicate(&ows);
            model.apply_overwrites(&mut e, &mut pat, &ows);
        }
        model.check_invariants(&mut e).unwrap();
        let classes_before = model.len();

        // The update block: +HTTP rules on all 3 switches (Figure 2 right).
        let mk_http = |m: &Match| {
            (*m).with(
                flash_netmodel::FieldId(1),
                flash_netmodel::MatchKind::Exact(http),
            )
        };
        let updates: Vec<(usize, Vec<RuleUpdate>)> = vec![
            (
                0,
                vec![
                    RuleUpdate::insert(Rule::new(mk_http(&subnet1), 3, a_to_a)),
                    RuleUpdate::insert(Rule::new(mk_http(&subnet2), 3, a_to_a)),
                ],
            ),
            (
                1,
                vec![
                    RuleUpdate::insert(Rule::new(mk_http(&subnet1), 3, a_to_s1)),
                    RuleUpdate::insert(Rule::new(mk_http(&subnet2), 3, a_to_s1)),
                ],
            ),
            (
                2,
                vec![
                    RuleUpdate::insert(Rule::new(mk_http(&subnet1), 3, a_to_s2)),
                    RuleUpdate::insert(Rule::new(mk_http(&subnet2), 3, a_to_s2)),
                ],
            ),
        ];
        let mut all_atomics = Vec::new();
        for (dev, block) in updates {
            let block = cancel_updates(&block);
            let res = merge_block_and_diff(&mut fibs[dev], &block);
            all_atomics.extend(calculate_atomic_overwrites(
                &mut e, &l, DeviceId(dev as u32), &fibs[dev], &res.diff, &t,
                &mut MatchMemo::disabled(),
            ));
        }
        // 6 native updates → 6 atomic overwrites…
        assert_eq!(all_atomics.len(), 6);
        let r1 = reduce_by_action(&mut e, &all_atomics);
        // …→ 3 after Reduce I (each device's two HTTP predicates merge)…
        assert_eq!(r1.len(), 3);
        let r2 = reduce_by_predicate(&r1);
        // …→ 1 compact overwrite after Reduce II (same predicate p3).
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].writes.len(), 3);

        model.apply_overwrites(&mut e, &mut pat, &r2);
        model.check_invariants(&mut e).unwrap();
        // Exactly one new equivalence class (the HTTP-to-subnets class).
        assert_eq!(model.len(), classes_before + 1);
    }
}
