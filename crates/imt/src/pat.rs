//! Persistent action tree (PAT), §3.4 of the paper.
//!
//! An equivalence class carries an `N`-dimension action vector — the action
//! every device applies to packets in the class. Storing vectors as arrays
//! makes the common operation (overwrite the actions of a few devices)
//! `O(N)` in time and space. The PAT instead stores the vector as a
//! **persistent balanced binary search tree** keyed by device id: an
//! overwrite copies only the path from the root to each modified key,
//! `O(‖Δy‖ · log ‖y‖)`.
//!
//! Two extra properties make the PAT effective for the inverse model:
//!
//! * **Canonical shape.** The tree is a treap whose heap priority is a
//!   fixed hash of the key, so a given key→value map has exactly one shape.
//! * **Hash consing.** Nodes are interned, so equal subtrees are the same
//!   arena index, vector equality is `PatId == PatId`, and the structural
//!   sharing the paper relies on is automatic.
//!
//! Devices absent from a tree implicitly take the default action
//! (`ACTION_DROP`), which keeps initial all-default vectors at the empty
//! tree [`PAT_NIL`].

use flash_netmodel::{ActionId, DeviceId, ACTION_DROP};
use std::collections::HashMap;

/// Index of a PAT node in a [`PatStore`]. `PAT_NIL` is the empty tree.
pub type PatId = u32;

/// The empty action vector (every device at the default action).
pub const PAT_NIL: PatId = 0;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct PatNode {
    key: u32,   // device id
    value: u32, // action id
    left: PatId,
    right: PatId,
}

/// splitmix64 — the treap priority of a key. Deterministic across runs.
fn prio(key: u32) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Total priority order: hash first, key as tiebreak.
fn prio_key(key: u32) -> (u64, u32) {
    (prio(key), key)
}

/// Arena + intern table for persistent action trees.
#[derive(Debug, Default)]
pub struct PatStore {
    nodes: Vec<PatNode>,
    intern: HashMap<PatNode, PatId>,
}

impl PatStore {
    pub fn new() -> Self {
        let mut s = PatStore {
            nodes: Vec::new(),
            intern: HashMap::new(),
        };
        // Slot 0 is a sentinel so PAT_NIL == 0 is never a real node.
        s.nodes.push(PatNode {
            key: u32::MAX,
            value: u32::MAX,
            left: 0,
            right: 0,
        });
        s
    }

    /// Number of live nodes (excluding the sentinel).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<PatNode>() + self.intern.capacity() * 32
    }

    fn mk(&mut self, key: u32, value: u32, left: PatId, right: PatId) -> PatId {
        let n = PatNode {
            key,
            value,
            left,
            right,
        };
        if let Some(&id) = self.intern.get(&n) {
            return id;
        }
        let id = self.nodes.len() as PatId;
        self.nodes.push(n);
        self.intern.insert(n, id);
        id
    }

    fn node(&self, id: PatId) -> PatNode {
        debug_assert_ne!(id, PAT_NIL);
        self.nodes[id as usize]
    }

    /// The action of `dev` in vector `t` (default drop when absent).
    pub fn get(&self, t: PatId, dev: DeviceId) -> ActionId {
        let mut cur = t;
        while cur != PAT_NIL {
            let n = self.node(cur);
            cur = match dev.0.cmp(&n.key) {
                std::cmp::Ordering::Equal => return ActionId(n.value),
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
            };
        }
        ACTION_DROP
    }

    /// True when `dev` has an explicit (non-default) entry.
    pub fn contains(&self, t: PatId, dev: DeviceId) -> bool {
        let mut cur = t;
        while cur != PAT_NIL {
            let n = self.node(cur);
            cur = match dev.0.cmp(&n.key) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
            };
        }
        false
    }

    /// Splits `t` into keys `< key` and keys `> key`, discarding `key`.
    fn split(&mut self, t: PatId, key: u32) -> (PatId, PatId) {
        if t == PAT_NIL {
            return (PAT_NIL, PAT_NIL);
        }
        let n = self.node(t);
        match key.cmp(&n.key) {
            std::cmp::Ordering::Equal => (n.left, n.right),
            std::cmp::Ordering::Less => {
                let (ll, lr) = self.split(n.left, key);
                let right = self.mk(n.key, n.value, lr, n.right);
                (ll, right)
            }
            std::cmp::Ordering::Greater => {
                let (rl, rr) = self.split(n.right, key);
                let left = self.mk(n.key, n.value, n.left, rl);
                (left, rr)
            }
        }
    }

    /// Returns `t` with `dev → action` set (persistently).
    pub fn set(&mut self, t: PatId, dev: DeviceId, action: ActionId) -> PatId {
        let (key, value) = (dev.0, action.0);
        if t == PAT_NIL {
            return self.mk(key, value, PAT_NIL, PAT_NIL);
        }
        let n = self.node(t);
        if prio_key(key) > prio_key(n.key) {
            // New node becomes the root of this subtree.
            let (l, r) = self.split(t, key);
            return self.mk(key, value, l, r);
        }
        match key.cmp(&n.key) {
            std::cmp::Ordering::Equal => {
                if n.value == value {
                    t // no change: preserve sharing
                } else {
                    self.mk(key, value, n.left, n.right)
                }
            }
            std::cmp::Ordering::Less => {
                let nl = self.set(n.left, dev, action);
                if nl == n.left {
                    t
                } else {
                    self.mk(n.key, n.value, nl, n.right)
                }
            }
            std::cmp::Ordering::Greater => {
                let nr = self.set(n.right, dev, action);
                if nr == n.right {
                    t
                } else {
                    self.mk(n.key, n.value, n.left, nr)
                }
            }
        }
    }

    /// Merges two trees where every key of `l` precedes every key of `r`
    /// (standard treap merge).
    fn merge(&mut self, l: PatId, r: PatId) -> PatId {
        if l == PAT_NIL {
            return r;
        }
        if r == PAT_NIL {
            return l;
        }
        let (nl, nr) = (self.node(l), self.node(r));
        if prio_key(nl.key) > prio_key(nr.key) {
            let right = self.merge(nl.right, r);
            self.mk(nl.key, nl.value, nl.left, right)
        } else {
            let left = self.merge(l, nr.left);
            self.mk(nr.key, nr.value, left, nr.right)
        }
    }

    /// Returns `t` with `dev` removed (reverting it to the default action).
    pub fn remove(&mut self, t: PatId, dev: DeviceId) -> PatId {
        if t == PAT_NIL {
            return PAT_NIL;
        }
        let n = self.node(t);
        match dev.0.cmp(&n.key) {
            std::cmp::Ordering::Equal => self.merge(n.left, n.right),
            std::cmp::Ordering::Less => {
                let nl = self.remove(n.left, dev);
                if nl == n.left {
                    t
                } else {
                    self.mk(n.key, n.value, nl, n.right)
                }
            }
            std::cmp::Ordering::Greater => {
                let nr = self.remove(n.right, dev);
                if nr == n.right {
                    t
                } else {
                    self.mk(n.key, n.value, n.left, nr)
                }
            }
        }
    }

    /// Applies a partial overwrite `Δy` (Definition 2's `←` operator):
    /// every `(device, action)` write replaces that device's entry.
    pub fn overwrite(&mut self, t: PatId, writes: &[(DeviceId, ActionId)]) -> PatId {
        let mut cur = t;
        for &(dev, act) in writes {
            cur = if act == ACTION_DROP {
                // Normalize: default-action entries are kept implicit so
                // equal vectors always intern to the same id.
                self.remove(cur, dev)
            } else {
                self.set(cur, dev, act)
            };
        }
        cur
    }

    /// Number of explicit (non-default) entries — `‖y‖≠0` in the paper.
    pub fn weight(&self, t: PatId) -> usize {
        if t == PAT_NIL {
            return 0;
        }
        let n = self.node(t);
        1 + self.weight(n.left) + self.weight(n.right)
    }

    /// In-order (device-ascending) enumeration of the explicit entries.
    pub fn entries(&self, t: PatId) -> Vec<(DeviceId, ActionId)> {
        let mut out = Vec::new();
        self.walk(t, &mut out);
        out
    }

    fn walk(&self, t: PatId, out: &mut Vec<(DeviceId, ActionId)>) {
        if t == PAT_NIL {
            return;
        }
        let n = self.node(t);
        self.walk(n.left, out);
        out.push((DeviceId(n.key), ActionId(n.value)));
        self.walk(n.right, out);
    }

    /// Builds a vector from entries (order-insensitive).
    pub fn from_entries(&mut self, entries: &[(DeviceId, ActionId)]) -> PatId {
        self.overwrite(PAT_NIL, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DeviceId {
        DeviceId(i)
    }
    fn a(i: u32) -> ActionId {
        ActionId(i)
    }

    #[test]
    fn empty_tree_defaults_to_drop() {
        let store = PatStore::new();
        assert_eq!(store.get(PAT_NIL, d(7)), ACTION_DROP);
        assert_eq!(store.weight(PAT_NIL), 0);
        assert!(store.entries(PAT_NIL).is_empty());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = PatStore::new();
        let t = s.set(PAT_NIL, d(3), a(5));
        assert_eq!(s.get(t, d(3)), a(5));
        assert_eq!(s.get(t, d(4)), ACTION_DROP);
        assert_eq!(s.weight(t), 1);
    }

    #[test]
    fn canonical_shape_insertion_order_insensitive() {
        let mut s = PatStore::new();
        let mut t1 = PAT_NIL;
        for i in 0..50u32 {
            t1 = s.set(t1, d(i), a(i + 100));
        }
        let mut t2 = PAT_NIL;
        for i in (0..50u32).rev() {
            t2 = s.set(t2, d(i), a(i + 100));
        }
        assert_eq!(t1, t2, "hash-consed treaps must be canonical");
    }

    #[test]
    fn overwrite_is_persistent() {
        let mut s = PatStore::new();
        let base = s.from_entries(&[(d(1), a(10)), (d(2), a(20)), (d(3), a(30))]);
        let new = s.overwrite(base, &[(d(2), a(99))]);
        assert_eq!(s.get(base, d(2)), a(20), "original untouched");
        assert_eq!(s.get(new, d(2)), a(99));
        assert_eq!(s.get(new, d(1)), a(10));
        assert_eq!(s.get(new, d(3)), a(30));
    }

    #[test]
    fn idempotent_set_preserves_id() {
        let mut s = PatStore::new();
        let t = s.from_entries(&[(d(1), a(10)), (d(2), a(20))]);
        let t2 = s.overwrite(t, &[(d(1), a(10))]);
        assert_eq!(t, t2, "writing an identical value must not copy");
    }

    #[test]
    fn drop_writes_are_normalized_away() {
        let mut s = PatStore::new();
        let t = s.from_entries(&[(d(1), a(10))]);
        let t2 = s.overwrite(t, &[(d(1), ACTION_DROP)]);
        assert_eq!(t2, PAT_NIL);
    }

    #[test]
    fn remove_missing_is_noop() {
        let mut s = PatStore::new();
        let t = s.from_entries(&[(d(1), a(10))]);
        assert_eq!(s.remove(t, d(9)), t);
    }

    #[test]
    fn entries_sorted_by_device() {
        let mut s = PatStore::new();
        let t = s.from_entries(&[(d(5), a(1)), (d(1), a(2)), (d(3), a(3))]);
        let e = s.entries(t);
        assert_eq!(e, vec![(d(1), a(2)), (d(3), a(3)), (d(5), a(1))]);
    }

    #[test]
    fn structural_sharing_bounds_node_growth() {
        let mut s = PatStore::new();
        let mut t = PAT_NIL;
        for i in 0..1024u32 {
            t = s.set(t, d(i), a(1));
        }
        let before = s.node_count();
        // A single-device overwrite on a 1024-entry vector must allocate
        // O(log n) nodes, not O(n).
        let _t2 = s.set(t, d(512), a(2));
        let grown = s.node_count() - before;
        assert!(grown <= 64, "expected O(log n) new nodes, got {grown}");
    }

    #[test]
    fn contains_distinguishes_default() {
        let mut s = PatStore::new();
        let t = s.from_entries(&[(d(1), a(10))]);
        assert!(s.contains(t, d(1)));
        assert!(!s.contains(t, d(2)));
    }
}
