//! The model manager of Figure 1: maintains per-device FIB snapshots and
//! the inverse model, applying update blocks through the MR² pipeline.
//!
//! The manager buffers incoming updates and flushes them through Fast IMT
//! once the **block size threshold** (BST, §5.2 / Figure 7) is reached.
//! `bst = 1` degenerates to the per-update mode used as a baseline in
//! Figure 11; `bst = usize::MAX` defers everything to an explicit
//! [`ModelManager::flush`].
//!
//! Memory management is delegated to the predicate engine: the model's
//! entries are rooted [`flash_bdd::Pred`] handles, so the engine's
//! automatic mark-sweep GC reclaims the map phase's transient predicates
//! without any root collection or id remapping here.

use crate::memo::{MatchMemo, DEFAULT_MATCH_MEMO_CAPACITY};
use crate::model::InverseModel;
use crate::mr2::{
    build_rule_trie, calculate_atomic_overwrites, calculate_atomic_overwrites_trie,
    cancel_updates, merge_block_and_diff, reduce_by_action, reduce_by_predicate,
    AtomicOverwrite,
};
use crate::pat::{PatId, PatStore};
use crate::snapshot::{EpochSnapshot, SnapshotClass, SnapshotPin};
use crate::subspace::SubspaceSpec;
use flash_bdd::{EngineTelemetry, Pred, PredEngine};
use flash_netmodel::{ActionId, DeviceId, Fib, HeaderLayout, RuleOp, RuleTrie, RuleUpdate};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the map phase computes shadow (higher-priority) predicates for the
/// expanding rules of a block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShadowStrategy {
    /// Per block and device, pick accumulated or trie shadows from a cost
    /// model on the diff size, the table size, and the measured overlap
    /// degree (EWMA of rules overlapping a sampled diff rule).
    #[default]
    Auto,
    /// Always the single accumulated disjunction over the whole table
    /// (Algorithm 1's linear scan). The per-device rule tries are not
    /// maintained under this forced strategy.
    Accumulated,
    /// Always per-rule shadows from the per-device overlap trie.
    Trie,
}

/// Performance knobs for the Fast IMT pipeline. The defaults enable every
/// optimization; tests and benchmarks can disable them individually to
/// compare against the baseline paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImtTuning {
    /// Capacity of the per-manager `Match → Pred` memo threaded through
    /// the map phase. `0` disables memoization entirely.
    pub match_memo_capacity: usize,
    /// Shadow-computation policy for the map phase.
    pub shadow_strategy: ShadowStrategy,
    /// Maintain the inverse model's cell overlap index so overwrites probe
    /// only candidate classes instead of scanning all of them.
    pub class_index: bool,
}

impl Default for ImtTuning {
    fn default() -> Self {
        ImtTuning {
            match_memo_capacity: DEFAULT_MATCH_MEMO_CAPACITY,
            shadow_strategy: ShadowStrategy::Auto,
            class_index: true,
        }
    }
}

/// Configuration of a model manager.
#[derive(Clone, Debug)]
pub struct ModelManagerConfig {
    pub layout: HeaderLayout,
    /// The subspace this manager is responsible for.
    pub subspace: SubspaceSpec,
    /// Flush automatically once this many updates are buffered.
    pub bst: usize,
    /// Drop updates whose match cannot intersect the subspace (cheap
    /// syntactic filter) before they are buffered.
    pub filter_updates: bool,
    /// The engine collects automatically once this many nodes are live.
    /// `usize::MAX` disables automatic GC. Storm workloads produce large
    /// transient predicates during the map phase; automatic GC keeps the
    /// footprint near the live model size.
    pub gc_node_threshold: usize,
    /// Performance knobs (memoization, overlap index, shadow strategy).
    pub tuning: ImtTuning,
    /// Computed-cache sizing for the predicate engine. Bins typically pass
    /// [`flash_bdd::CacheConfig::from_env`] so `FLASH_CACHE_CAP` applies.
    pub cache: flash_bdd::CacheConfig,
}

impl ModelManagerConfig {
    /// Whole-space manager with an effectively infinite BST (explicit
    /// flushing), the configuration used for the update-storm benchmarks.
    pub fn whole_space(layout: HeaderLayout) -> Self {
        ModelManagerConfig {
            layout,
            subspace: SubspaceSpec::whole(),
            bst: usize::MAX,
            filter_updates: false,
            gc_node_threshold: flash_bdd::DEFAULT_GC_NODE_THRESHOLD,
            tuning: ImtTuning::default(),
            cache: flash_bdd::CacheConfig::default(),
        }
    }
}

/// Cumulative wall-clock time per MR² phase (Figure 11's breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Map: merging blocks and computing atomic overwrites.
    pub compute_atomic: Duration,
    /// Reduce I + Reduce II.
    pub aggregate: Duration,
    /// Applying the compact overwrites to the inverse model.
    pub apply: Duration,
}

impl PhaseTimings {
    pub fn total(&self) -> Duration {
        self.compute_atomic + self.aggregate + self.apply
    }
}

/// Counters describing the work a manager has performed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UpdateStats {
    /// Native updates accepted (post subspace filter).
    pub updates_accepted: u64,
    /// Native updates rejected by the subspace filter.
    pub updates_filtered: u64,
    /// Flushes performed.
    pub flushes: u64,
    /// Atomic overwrites produced by the map phase.
    pub atomic_overwrites: u64,
    /// Compact overwrites after both reduces.
    pub compact_overwrites: u64,
    /// Match-predicate memo hits (a FIB match re-encoded for free).
    pub match_memo_hits: u64,
    /// Match-predicate memo misses (a fresh BDD encoding).
    pub match_memo_misses: u64,
    /// Candidate classes probed by indexed overwrite application.
    pub classes_probed: u64,
    /// Classes skipped by the overlap index without touching the BDD.
    pub classes_pruned: u64,
    /// Full overlap-index rebuilds (including the initial lazy build).
    pub index_rebuilds: u64,
    /// Device blocks mapped with the accumulated-disjunction shadows.
    pub shadow_acc_blocks: u64,
    /// Device blocks mapped with per-rule trie shadows.
    pub shadow_trie_blocks: u64,
    /// Snapshot of the predicate-engine telemetry (ops, cache hit rates,
    /// node counts, GC pauses) at the time [`ModelManager::stats`] was
    /// called.
    pub engine: EngineTelemetry,
}

impl UpdateStats {
    /// Adds every counter of `other` into `self` — used to aggregate the
    /// per-shard stats of a partitioned run into one fleet-wide view.
    pub fn absorb(&mut self, other: &UpdateStats) {
        self.updates_accepted += other.updates_accepted;
        self.updates_filtered += other.updates_filtered;
        self.flushes += other.flushes;
        self.atomic_overwrites += other.atomic_overwrites;
        self.compact_overwrites += other.compact_overwrites;
        self.match_memo_hits += other.match_memo_hits;
        self.match_memo_misses += other.match_memo_misses;
        self.classes_probed += other.classes_probed;
        self.classes_pruned += other.classes_pruned;
        self.index_rebuilds += other.index_rebuilds;
        self.shadow_acc_blocks += other.shadow_acc_blocks;
        self.shadow_trie_blocks += other.shadow_trie_blocks;
        self.engine.absorb(&other.engine);
    }
}

/// A decoded, device-sorted PAT action vector, shared with every
/// snapshot that publishes the class.
type SharedActionVector = Arc<Vec<(DeviceId, ActionId)>>;

/// The model manager: FIB snapshots + inverse model + MR² driver.
pub struct ModelManager {
    config: ModelManagerConfig,
    engine: PredEngine,
    pat: PatStore,
    model: InverseModel,
    clip: Pred,
    fibs: HashMap<DeviceId, Fib>,
    /// Per-device mirror of the FIB as an overlap trie (minus the default
    /// rule), maintained incrementally from each merge's applied updates.
    /// Empty when the shadow strategy is forced to `Accumulated`.
    tries: HashMap<DeviceId, RuleTrie>,
    /// EWMA of the measured overlap degree (rules overlapping a sampled
    /// diff rule) per device — the cost model's α in `|diff|·α < |table|`.
    overlap_ewma: HashMap<DeviceId, f64>,
    memo: MatchMemo,
    pending: Vec<(DeviceId, RuleUpdate)>,
    timings: PhaseTimings,
    stats: UpdateStats,
    /// Memoized [`Self::class_keys`] result, keyed on the model's
    /// class-composition version; `RefCell` so the getters stay `&self`.
    class_keys_cache: RefCell<Option<(u64, Arc<Vec<u64>>)>>,
    /// Per-`PatId` class fingerprints. `PatId`s are stable in the
    /// append-only PAT arena, so entries never invalidate.
    fingerprint_memo: RefCell<HashMap<PatId, u64>>,
    /// Per-`PatId` decoded action vectors for snapshot publication
    /// (stable for the same reason).
    vector_memo: RefCell<HashMap<PatId, SharedActionVector>>,
    /// Live snapshot pins: `Pred` clones keeping published epochs'
    /// roots alive until every snapshot holder is gone.
    snapshot_pins: Vec<SnapshotPin>,
}

/// Initial overlap-degree estimate before any measurement: pessimistic
/// enough that tiny diffs still choose the trie, large diffs do not.
const OVERLAP_EWMA_INIT: f64 = 8.0;

impl ModelManager {
    pub fn new(config: ModelManagerConfig) -> Self {
        let mut engine = PredEngine::with_config(
            config.layout.total_bits(),
            config.gc_node_threshold,
            config.cache,
        );
        let clip = config.subspace.universe(&config.layout, &mut engine);
        let mut model = InverseModel::new(clip.clone());
        model.set_index_enabled(config.tuning.class_index);
        let memo = MatchMemo::new(config.tuning.match_memo_capacity);
        ModelManager {
            config,
            engine,
            pat: PatStore::new(),
            model,
            clip,
            fibs: HashMap::new(),
            tries: HashMap::new(),
            overlap_ewma: HashMap::new(),
            memo,
            pending: Vec::new(),
            timings: PhaseTimings::default(),
            stats: UpdateStats::default(),
            class_keys_cache: RefCell::new(None),
            fingerprint_memo: RefCell::new(HashMap::new()),
            vector_memo: RefCell::new(HashMap::new()),
            snapshot_pins: Vec::new(),
        }
    }

    pub fn layout(&self) -> &HeaderLayout {
        &self.config.layout
    }

    pub fn model(&self) -> &InverseModel {
        &self.model
    }

    pub fn engine(&self) -> &PredEngine {
        &self.engine
    }

    pub fn engine_mut(&mut self) -> &mut PredEngine {
        &mut self.engine
    }

    pub fn pat(&self) -> &PatStore {
        &self.pat
    }

    /// Canonical fingerprints of the model's equivalence classes: one
    /// hash per class over its decoded, device-ascending forwarding
    /// vector (explicit non-drop entries only).
    ///
    /// Unlike `PatId`s or predicate node ids, these are stable across
    /// engines, so the *distinct union* of `class_keys` over the models
    /// of a partition equals the whole-space class count — the
    /// cross-shard consistency check used by the sharded pipeline.
    /// Both the per-`PatId` fingerprints and the assembled key vector are
    /// memoized: fingerprints are permanent (`PatId`s never move in the
    /// append-only PAT arena) and the vector is keyed on the model's
    /// class-composition version, so repeated calls between class
    /// add/remove events — per-epoch shard equivalence checks, snapshot
    /// publication — are O(1) instead of O(n log n) hashing.
    pub fn class_keys(&self) -> Vec<u64> {
        self.class_keys_arc().as_ref().clone()
    }

    /// Allocation-free variant of [`Self::class_keys`]: the memoized key
    /// vector behind a shared handle.
    pub fn class_keys_arc(&self) -> Arc<Vec<u64>> {
        let version = self.model.version();
        if let Some((v, keys)) = self.class_keys_cache.borrow().as_ref() {
            if *v == version {
                return keys.clone();
            }
        }
        let mut fp = self.fingerprint_memo.borrow_mut();
        let keys: Arc<Vec<u64>> = Arc::new(
            self.model
                .entries()
                .iter()
                .map(|e| {
                    *fp.entry(e.vector).or_insert_with(|| {
                        use std::hash::{Hash, Hasher};
                        let mut h = std::collections::hash_map::DefaultHasher::new();
                        self.pat.entries(e.vector).hash(&mut h);
                        h.finish()
                    })
                })
                .collect(),
        );
        *self.class_keys_cache.borrow_mut() = Some((version, keys.clone()));
        keys
    }

    /// Publishes an immutable [`EpochSnapshot`] of the current model under
    /// epoch sequence `seq`, for concurrent query serving.
    ///
    /// Cheap: O(classes) `Pred` clones plus one decoded vector per
    /// distinct `PatId` ever published (memoized) — **no BDD structure is
    /// copied**. The manager pins every class predicate (clone-rooted in
    /// the engine) so collections here never reclaim snapshot nodes; the
    /// pin is released automatically once every `Arc<EpochSnapshot>` is
    /// dropped (dead pins are pruned at the next publish, or explicitly
    /// via [`Self::retire_snapshots`]).
    ///
    /// Call between flushes: the snapshot then observes exactly one
    /// sealed epoch (no partially-applied block).
    pub fn publish_snapshot(&mut self, seq: u64) -> Arc<EpochSnapshot> {
        self.retire_snapshots();
        let keys = self.class_keys_arc();
        let mut vec_memo = self.vector_memo.borrow_mut();
        let mut preds = Vec::with_capacity(self.model.len());
        let mut classes = Vec::with_capacity(self.model.len());
        for (e, &fingerprint) in self.model.entries().iter().zip(keys.iter()) {
            let vector = vec_memo
                .entry(e.vector)
                .or_insert_with(|| Arc::new(self.pat.entries(e.vector)))
                .clone();
            classes.push(SnapshotClass {
                root: self.engine.export(&e.pred).node(),
                fingerprint,
                vector,
            });
            preds.push(e.pred.clone());
        }
        drop(vec_memo);
        let alive = Arc::new(());
        self.snapshot_pins.push(SnapshotPin {
            seq,
            _preds: preds,
            alive: Arc::downgrade(&alive),
        });
        Arc::new(EpochSnapshot::new(
            seq,
            self.config.subspace,
            self.config.layout.clone(),
            self.engine.node_view(),
            classes,
            alive,
        ))
    }

    /// Drops the pins of snapshots no holder references anymore, letting
    /// the next collection reclaim their exclusive nodes. Returns the
    /// number of still-pinned snapshots.
    pub fn retire_snapshots(&mut self) -> usize {
        self.snapshot_pins.retain(|p| p.alive.strong_count() > 0);
        self.snapshot_pins.len()
    }

    /// Epoch sequences currently pinned by live snapshots.
    pub fn pinned_epochs(&self) -> Vec<u64> {
        self.snapshot_pins
            .iter()
            .filter(|p| p.alive.strong_count() > 0)
            .map(|p| p.seq)
            .collect()
    }

    /// Split borrow for consumers (the CE2D verifier) that need predicate
    /// operations over the current model.
    pub fn parts_mut(&mut self) -> (&mut PredEngine, &mut PatStore, &InverseModel) {
        (&mut self.engine, &mut self.pat, &self.model)
    }

    pub fn timings(&self) -> PhaseTimings {
        self.timings
    }

    /// Work counters, including a fresh predicate-engine telemetry
    /// snapshot plus the current memo and overlap-index counters.
    pub fn stats(&self) -> UpdateStats {
        let mut s = self.stats;
        s.engine = self.engine.telemetry();
        s.match_memo_hits = self.memo.hits();
        s.match_memo_misses = self.memo.misses();
        let ix = self.model.index_stats();
        s.classes_probed = ix.probed;
        s.classes_pruned = ix.pruned;
        s.index_rebuilds = ix.rebuilds;
        s
    }

    /// The FIB snapshot of a device (the default-only table when the
    /// device has never sent an update).
    pub fn fib(&mut self, dev: DeviceId) -> &Fib {
        let layout = &self.config.layout;
        self.fibs.entry(dev).or_insert_with(|| Fib::new(layout))
    }

    /// Devices with a tracked FIB snapshot.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.fibs.keys().copied()
    }

    /// Per-device FIB snapshots (non-default rules only), sorted by
    /// device id — the recovery-checkpoint payload. The inverse model is
    /// a deterministic function of the current FIB set, so re-ingesting
    /// these rules into a fresh manager reconstructs an equivalent model
    /// without serializing any predicate-engine state.
    pub fn fib_snapshot(&self) -> Vec<(DeviceId, Vec<flash_netmodel::Rule>)> {
        let mut out: Vec<(DeviceId, Vec<flash_netmodel::Rule>)> = self
            .fibs
            .iter()
            .map(|(dev, fib)| {
                let rules: Vec<flash_netmodel::Rule> = fib
                    .rules()
                    .iter()
                    .filter(|r| !(r.priority == i64::MIN && r.mat.is_any()))
                    .cloned()
                    .collect();
                (*dev, rules)
            })
            .collect();
        out.sort_by_key(|(d, _)| d.0);
        out
    }

    /// Approximate resident bytes of the verifier state (BDD arena + PAT
    /// arena + model entries + rule snapshots).
    pub fn approx_bytes(&self) -> usize {
        let rule_bytes: usize = self
            .fibs
            .values()
            .map(|f| f.len() * std::mem::size_of::<flash_netmodel::Rule>())
            .sum();
        self.engine.approx_bytes()
            + self.pat.approx_bytes()
            + self.model.approx_bytes()
            + rule_bytes
    }

    /// Buffers updates for a device, flushing if the BST is reached.
    /// Returns `true` when a flush happened.
    pub fn submit(&mut self, dev: DeviceId, updates: impl IntoIterator<Item = RuleUpdate>) -> bool {
        for u in updates {
            if self.config.filter_updates
                && !self.config.subspace.admits(&u.rule.mat, &self.config.layout)
            {
                self.stats.updates_filtered += 1;
                continue;
            }
            self.stats.updates_accepted += 1;
            self.pending.push((dev, u));
        }
        if self.pending.len() >= self.config.bst {
            self.flush();
            true
        } else {
            false
        }
    }

    /// Number of buffered (unapplied) updates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Buffers updates for a device without ever auto-flushing — the
    /// bulk-load companion of [`Self::submit`]. The same subspace filter
    /// applies; the buffered updates are released by [`Self::bulk_load`]
    /// (snapshot fast path) or [`Self::flush`] (incremental pipeline).
    pub fn submit_bulk(&mut self, dev: DeviceId, updates: impl IntoIterator<Item = RuleUpdate>) {
        for u in updates {
            if self.config.filter_updates
                && !self.config.subspace.admits(&u.rule.mat, &self.config.layout)
            {
                self.stats.updates_filtered += 1;
                continue;
            }
            self.stats.updates_accepted += 1;
            self.pending.push((dev, u));
        }
    }

    /// Applies every buffered update through the bulk snapshot path:
    /// each device's FIB is constructed in one sorted pass
    /// ([`Fib::from_sorted`]) and its whole rule set is the MR² diff, so
    /// the per-update merge/cancel/trie bookkeeping of [`Self::flush`] —
    /// pure overhead when every rule is new — is skipped. Reduce I runs
    /// per device (it groups by `(device, action)`, so per-device calls
    /// are equivalent to one global call and keep transient atomic
    /// predicates bounded); Reduce II and the model apply run once over
    /// the whole snapshot, which is where the cross-device compaction
    /// the incremental path never sees comes from.
    ///
    /// Falls back to [`Self::flush`] — identical semantics, incremental
    /// cost — unless every buffered update is an insert targeting a
    /// device whose FIB is still absent or default-only. Bulk load is an
    /// optimization of the initial snapshot, never a semantic fork.
    pub fn bulk_load(&mut self) -> Vec<DeviceId> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let eligible = self.pending.iter().all(|(dev, u)| {
            u.op == RuleOp::Insert && self.fibs.get(dev).is_none_or(|f| f.len() == 1)
        });
        if !eligible {
            return self.flush();
        }
        self.stats.flushes += 1;
        let pending = std::mem::take(&mut self.pending);

        let mut per_device: HashMap<DeviceId, Vec<flash_netmodel::Rule>> = HashMap::new();
        let mut order: Vec<DeviceId> = Vec::new();
        for (dev, u) in pending {
            let e = per_device.entry(dev).or_default();
            if e.is_empty() {
                order.push(dev);
            }
            e.push(u.rule);
        }

        let clip = self.clip.clone();
        let layout = self.config.layout.clone();
        let mut reduced: Vec<AtomicOverwrite> = Vec::new();
        for &dev in &order {
            let t0 = Instant::now();
            let mut rules = per_device.remove(&dev).expect("device in order");
            rules.sort_by(flash_netmodel::fib::rule_cmp);
            // `cancel_updates` nets duplicate inserts of one rule to a
            // single surviving insert; deduping exact-equal rules here
            // preserves that semantics.
            rules.dedup();
            // Keep the device's default rule (it may carry a non-drop
            // default action from `Fib::with_default`).
            let default = match self.fibs.get(&dev) {
                Some(f) => *f.rules().last().expect("fib default"),
                None => Fib::new(&layout).rules()[0],
            };
            let mut full = rules.clone();
            full.push(default);
            let fib = Fib::from_sorted(full);
            let atomics = calculate_atomic_overwrites(
                &mut self.engine,
                &layout,
                dev,
                &fib,
                &rules,
                &clip,
                &mut self.memo,
            );
            self.stats.shadow_acc_blocks += 1;
            self.stats.atomic_overwrites += atomics.len() as u64;
            self.fibs.insert(dev, fib);
            // Any mirror trie was seeded from the pre-bulk (empty) FIB;
            // drop it so the first incremental block reseeds from the
            // post-bulk snapshot.
            self.tries.remove(&dev);
            self.timings.compute_atomic += t0.elapsed();
            let t1 = Instant::now();
            reduced.extend(reduce_by_action(&mut self.engine, &atomics));
            self.timings.aggregate += t1.elapsed();
        }

        let t1 = Instant::now();
        let compact = reduce_by_predicate(&reduced);
        self.timings.aggregate += t1.elapsed();
        self.stats.compact_overwrites += compact.len() as u64;

        let t2 = Instant::now();
        self.model
            .apply_overwrites(&mut self.engine, &mut self.pat, &compact);
        self.timings.apply += t2.elapsed();
        order
    }

    /// Applies all buffered updates through the MR² pipeline. Returns the
    /// devices whose FIB changed.
    pub fn flush(&mut self) -> Vec<DeviceId> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        self.stats.flushes += 1;
        let pending = std::mem::take(&mut self.pending);

        // Group by device preserving arrival order.
        let mut per_device: HashMap<DeviceId, Vec<RuleUpdate>> = HashMap::new();
        let mut order: Vec<DeviceId> = Vec::new();
        for (dev, u) in pending {
            let e = per_device.entry(dev).or_default();
            if e.is_empty() {
                order.push(dev);
            }
            e.push(u);
        }

        // ---- Map phase: per-device decomposition into atomic overwrites.
        let t0 = Instant::now();
        let clip = self.clip.clone();
        let strategy = self.config.tuning.shadow_strategy;
        let maintain_trie = strategy != ShadowStrategy::Accumulated;
        let mut atomics: Vec<AtomicOverwrite> = Vec::new();
        for &dev in &order {
            let block = cancel_updates(&per_device[&dev]);
            if block.is_empty() {
                continue;
            }
            // Deleted rules may re-appear later with a different table
            // around them; their memoized predicates are still valid, but
            // dropping them keeps the memo biased toward live matches.
            for u in &block {
                if u.op == RuleOp::Delete {
                    self.memo.invalidate(&u.rule.mat);
                }
            }
            let layout = self.config.layout.clone();
            let fib = self
                .fibs
                .entry(dev)
                .or_insert_with(|| Fib::new(&layout));
            if maintain_trie && !self.tries.contains_key(&dev) {
                // First block for this device: seed the mirror from the
                // pre-merge snapshot, then replay the applied updates.
                self.tries.insert(dev, build_rule_trie(&layout, fib));
            }
            let res = merge_block_and_diff(fib, &block);
            if let Some(trie) = self.tries.get_mut(&dev) {
                for (op, rule) in &res.applied {
                    match op {
                        RuleOp::Insert => trie.insert(*rule),
                        RuleOp::Delete => {
                            trie.remove(rule);
                        }
                    }
                }
            }
            if res.diff.is_empty() {
                continue;
            }
            // Cost model: per-rule trie shadows beat the single accumulated
            // scan when probing |diff| rules (≈ α overlaps each) touches
            // fewer rules than one pass over the table. α is measured by
            // sampling one trie query per block, so the estimate tracks the
            // workload even while the accumulated path is being chosen.
            let use_trie = match strategy {
                ShadowStrategy::Accumulated => false,
                ShadowStrategy::Trie => true,
                ShadowStrategy::Auto => {
                    let trie = &self.tries[&dev];
                    let sampled = trie.overlapping(&res.diff[0].mat).count() as f64;
                    let est = self
                        .overlap_ewma
                        .entry(dev)
                        .or_insert(OVERLAP_EWMA_INIT);
                    *est = 0.7 * *est + 0.3 * sampled;
                    res.diff.len() as f64 * *est < fib.len() as f64
                }
            };
            if use_trie {
                let trie = &self.tries[&dev];
                atomics.extend(calculate_atomic_overwrites_trie(
                    &mut self.engine,
                    &layout,
                    dev,
                    trie,
                    &res.diff,
                    &clip,
                    &mut self.memo,
                ));
                self.stats.shadow_trie_blocks += 1;
            } else {
                atomics.extend(calculate_atomic_overwrites(
                    &mut self.engine,
                    &layout,
                    dev,
                    fib,
                    &res.diff,
                    &clip,
                    &mut self.memo,
                ));
                self.stats.shadow_acc_blocks += 1;
            }
        }
        self.timings.compute_atomic += t0.elapsed();
        self.stats.atomic_overwrites += atomics.len() as u64;

        // ---- Reduce I + II.
        let t1 = Instant::now();
        let reduced = reduce_by_action(&mut self.engine, &atomics);
        let compact = reduce_by_predicate(&reduced);
        self.timings.aggregate += t1.elapsed();
        self.stats.compact_overwrites += compact.len() as u64;

        // ---- Apply phase: cross product against the inverse model.
        let t2 = Instant::now();
        self.model
            .apply_overwrites(&mut self.engine, &mut self.pat, &compact);
        self.timings.apply += t2.elapsed();

        // Transient map-phase predicates dropped above are collected by the
        // engine's automatic GC the next time its threshold trips; no
        // manual root bookkeeping needed.
        order
    }

    /// Forces a predicate-engine collection (the engine also collects
    /// automatically past the configured threshold). Returns the number of
    /// reclaimed nodes.
    pub fn gc(&mut self) -> usize {
        self.engine.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_netmodel::{ActionTable, FieldId, Match, Rule};

    fn l() -> HeaderLayout {
        HeaderLayout::new(&[("dst", 8)])
    }

    fn mgr(bst: usize) -> ModelManager {
        ModelManager::new(ModelManagerConfig {
            bst,
            ..ModelManagerConfig::whole_space(l())
        })
    }

    #[test]
    fn empty_manager_has_default_model() {
        let m = mgr(usize::MAX);
        assert_eq!(m.model().len(), 1);
        assert!(m.model().universe().is_true());
    }

    #[test]
    fn manual_flush_applies_updates() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let mut m = mgr(usize::MAX);
        let layout = l();
        let r = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a1);
        assert!(!m.submit(DeviceId(0), [RuleUpdate::insert(r)]));
        assert_eq!(m.model().len(), 1, "not applied before flush");
        let touched = m.flush();
        assert_eq!(touched, vec![DeviceId(0)]);
        assert_eq!(m.model().len(), 2);
        let (engine, _, model) = m.parts_mut();
        model.check_invariants(engine).unwrap();
    }

    #[test]
    fn bst_triggers_autoflush() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let mut m = mgr(2);
        let layout = l();
        let r1 = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a1);
        let r2 = Rule::new(Match::dst_prefix(&layout, 0xB0, 4), 1, a1);
        assert!(!m.submit(DeviceId(0), [RuleUpdate::insert(r1)]));
        assert!(m.submit(DeviceId(0), [RuleUpdate::insert(r2)]));
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.stats().flushes, 1);
        assert_eq!(m.model().len(), 2); // one class for both prefixes
    }

    #[test]
    fn subspace_filter_rejects_foreign_updates() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let layout = l();
        let mut m = ModelManager::new(ModelManagerConfig {
            layout: layout.clone(),
            subspace: SubspaceSpec {
                field: FieldId(0),
                value: 0x80,
                len: 1,
            },
            bst: usize::MAX,
            filter_updates: true,
            gc_node_threshold: usize::MAX,
            tuning: ImtTuning::default(),
            cache: flash_bdd::CacheConfig::default(),
        });
        let inside = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a1);
        let outside = Rule::new(Match::dst_prefix(&layout, 0x20, 4), 1, a1);
        m.submit(DeviceId(0), [RuleUpdate::insert(inside), RuleUpdate::insert(outside)]);
        assert_eq!(m.stats().updates_accepted, 1);
        assert_eq!(m.stats().updates_filtered, 1);
        m.flush();
        let (engine, _, model) = m.parts_mut();
        model.check_invariants(engine).unwrap();
    }

    #[test]
    fn clipped_model_stays_in_subspace() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let layout = l();
        let mut m = ModelManager::new(ModelManagerConfig {
            layout: layout.clone(),
            subspace: SubspaceSpec {
                field: FieldId(0),
                value: 0x80,
                len: 1,
            },
            bst: usize::MAX,
            filter_updates: false,
            gc_node_threshold: usize::MAX,
            tuning: ImtTuning::default(),
            cache: flash_bdd::CacheConfig::default(),
        });
        // A wildcard-ish rule crossing the subspace boundary is clipped.
        let r = Rule::new(Match::dst_prefix(&layout, 0x80, 0), 1, a1); // /0 = any dst
        m.submit(DeviceId(0), [RuleUpdate::insert(r)]);
        m.flush();
        let (engine, _, model) = m.parts_mut();
        model.check_invariants(engine).unwrap();
        // Universe is the half space: total fraction covered is 1/2.
        let covered: f64 = model
            .entries()
            .iter()
            .map(|e| engine.sat_fraction(&e.pred))
            .sum();
        assert!((covered - 0.5).abs() < 1e-9);
    }

    #[test]
    fn insert_then_delete_restores_model() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let layout = l();
        let mut m = mgr(usize::MAX);
        let r = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a1);
        m.submit(DeviceId(0), [RuleUpdate::insert(r)]);
        m.flush();
        assert_eq!(m.model().len(), 2);
        m.submit(DeviceId(0), [RuleUpdate::delete(r)]);
        m.flush();
        assert_eq!(m.model().len(), 1, "deleting the rule restores default");
        assert_eq!(m.model().entries()[0].vector, crate::pat::PAT_NIL);
    }

    #[test]
    fn canceling_updates_in_one_block_are_noops() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let layout = l();
        let mut m = mgr(usize::MAX);
        let r = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a1);
        m.submit(
            DeviceId(0),
            [RuleUpdate::insert(r), RuleUpdate::delete(r)],
        );
        m.flush();
        assert_eq!(m.model().len(), 1);
        assert_eq!(m.stats().atomic_overwrites, 0);
    }

    #[test]
    fn bulk_load_matches_incremental_replay() {
        let mut at = ActionTable::new();
        let layout = l();
        let mut rules: Vec<(DeviceId, Rule)> = Vec::new();
        for d in 0..3u32 {
            for i in 0..8u64 {
                let a = at.fwd(DeviceId(100 + ((d as u64 + i) % 5) as u32));
                rules.push((
                    DeviceId(d),
                    Rule::new(Match::dst_prefix(&layout, (i << 5) & 0xE0, 3), (i % 4) as i64, a),
                ));
            }
        }
        // Incremental reference: one flush per device.
        let mut inc = mgr(usize::MAX);
        for (d, r) in &rules {
            inc.submit(*d, [RuleUpdate::insert(*r)]);
        }
        inc.flush();
        // Bulk path, with a duplicate insert thrown in (cancels to one).
        let mut bulk = mgr(usize::MAX);
        for (d, r) in &rules {
            bulk.submit_bulk(*d, [RuleUpdate::insert(*r)]);
        }
        bulk.submit_bulk(rules[0].0, [RuleUpdate::insert(rules[0].1)]);
        let touched = bulk.bulk_load();
        assert_eq!(touched.len(), 3);
        assert_eq!(bulk.pending_len(), 0);
        assert_eq!(bulk.model().len(), inc.model().len());
        let mut a = inc.class_keys();
        let mut b = bulk.class_keys();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b, "bulk and incremental models have identical classes");
        assert_eq!(bulk.fib_snapshot(), inc.fib_snapshot());
        let (engine, _, model) = bulk.parts_mut();
        model.check_invariants(engine).unwrap();
    }

    #[test]
    fn bulk_load_falls_back_for_non_snapshot_blocks() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let layout = l();
        let r1 = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a1);
        let r2 = Rule::new(Match::dst_prefix(&layout, 0xB0, 4), 1, a1);
        // Device already has a non-default FIB: bulk must fall back.
        let mut m = mgr(usize::MAX);
        m.submit(DeviceId(0), [RuleUpdate::insert(r1)]);
        m.flush();
        m.submit_bulk(DeviceId(0), [RuleUpdate::insert(r2)]);
        m.bulk_load();
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.fib(DeviceId(0)).len(), 3, "both rules + default");
        // A delete in the buffer also forces the incremental pipeline.
        let mut m = mgr(usize::MAX);
        m.submit_bulk(DeviceId(1), [RuleUpdate::insert(r1), RuleUpdate::delete(r1)]);
        m.bulk_load();
        assert_eq!(m.model().len(), 1, "insert+delete cancel to a no-op");
        // Incremental updates after a bulk load reseed the trie mirror
        // from the post-bulk FIB and stay consistent.
        let mut m = mgr(usize::MAX);
        m.submit_bulk(DeviceId(2), [RuleUpdate::insert(r1)]);
        m.bulk_load();
        m.submit(DeviceId(2), [RuleUpdate::insert(r2), RuleUpdate::delete(r1)]);
        m.flush();
        let (engine, _, model) = m.parts_mut();
        model.check_invariants(engine).unwrap();
        assert_eq!(m.fib(DeviceId(2)).len(), 2);
    }

    #[test]
    fn gc_keeps_model_valid() {
        let mut at = ActionTable::new();
        let layout = l();
        let mut m = mgr(usize::MAX);
        for i in 0..16u64 {
            let a = at.fwd(DeviceId(100 + i as u32));
            let r = Rule::new(Match::dst_prefix(&layout, i << 4, 4), 1, a);
            m.submit(DeviceId(0), [RuleUpdate::insert(r)]);
        }
        m.flush();
        let classes = m.model().len();
        m.gc();
        assert_eq!(m.model().len(), classes);
        let (engine, _, model) = m.parts_mut();
        model.check_invariants(engine).unwrap();
    }

    #[test]
    fn auto_gc_fires_above_threshold() {
        let mut at = ActionTable::new();
        let layout = l();
        let mut m = ModelManager::new(ModelManagerConfig {
            gc_node_threshold: 64,
            bst: 1,
            ..ModelManagerConfig::whole_space(layout.clone())
        });
        for i in 0..32u64 {
            let a = at.fwd(DeviceId(100 + i as u32));
            let r = Rule::new(Match::dst_prefix(&layout, (i * 8) & 0xF8, 5), 1, a);
            m.submit(DeviceId((i % 4) as u32), [RuleUpdate::insert(r)]);
        }
        assert!(m.stats().engine.gc_runs > 0, "auto-GC should have fired");
        let (engine, _, model) = m.parts_mut();
        model.check_invariants(engine).unwrap();
    }

    #[test]
    fn timings_accumulate() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let layout = l();
        let mut m = mgr(usize::MAX);
        let r = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a1);
        m.submit(DeviceId(0), [RuleUpdate::insert(r)]);
        m.flush();
        let t = m.timings();
        assert!(t.total() > Duration::ZERO);
    }

    #[test]
    fn class_keys_memo_tracks_model_changes() {
        let mut at = ActionTable::new();
        let layout = l();
        let mut m = mgr(usize::MAX);
        for i in 0..8u64 {
            let a = at.fwd(DeviceId(100 + i as u32));
            m.submit(DeviceId(0), [RuleUpdate::insert(Rule::new(
                Match::dst_prefix(&layout, i << 5, 3),
                1,
                a,
            ))]);
        }
        m.flush();
        let k1 = m.class_keys_arc();
        let k2 = m.class_keys_arc();
        assert!(Arc::ptr_eq(&k1, &k2), "unchanged model returns the cached keys");
        // A model-changing flush must invalidate the memo.
        let a = at.fwd(DeviceId(42));
        m.submit(DeviceId(1), [RuleUpdate::insert(Rule::new(
            Match::dst_prefix(&layout, 0xA0, 4),
            1,
            a,
        ))]);
        m.flush();
        let k3 = m.class_keys();
        assert_ne!(k1.as_ref(), &k3, "new class changes the key set");
        // Memoized keys equal a from-scratch recomputation.
        use std::hash::{Hash, Hasher};
        let fresh: Vec<u64> = m
            .model()
            .entries()
            .iter()
            .map(|e| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                m.pat().entries(e.vector).hash(&mut h);
                h.finish()
            })
            .collect();
        assert_eq!(k3, fresh);
    }

    #[test]
    fn snapshot_classifies_like_live_model() {
        let mut at = ActionTable::new();
        let layout = l();
        let mut m = mgr(usize::MAX);
        for i in 0..8u64 {
            let a = at.fwd(DeviceId(100 + i as u32));
            m.submit(DeviceId(0), [RuleUpdate::insert(Rule::new(
                Match::dst_prefix(&layout, i << 5, 3),
                1,
                a,
            ))]);
        }
        m.flush();
        let snap = m.publish_snapshot(1);
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.classes.len(), m.model().len());
        for hdr in 0..=255u64 {
            let bits: Vec<bool> = (0..8).map(|i| (hdr >> (7 - i)) & 1 == 1).collect();
            let live = m.model().classify(m.engine(), &bits).map(|e| m.pat().entries(e.vector));
            let snapshot = snap.classify(&bits).map(|c| c.vector.as_ref().clone());
            assert_eq!(live, snapshot, "header {hdr:#x}");
        }
    }

    #[test]
    fn snapshot_survives_churn_and_collection() {
        let mut at = ActionTable::new();
        let layout = l();
        let mut m = mgr(usize::MAX);
        let a = at.fwd(DeviceId(9));
        let r = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a);
        m.submit(DeviceId(0), [RuleUpdate::insert(r)]);
        m.flush();
        let snap = m.publish_snapshot(1);
        let before: Vec<u64> = snap.classes.iter().map(|c| c.fingerprint).collect();
        // Churn the live model (including deleting the snapshot's rule)
        // and force collections: the pinned snapshot must keep answering
        // from its sealed epoch.
        m.submit(DeviceId(0), [RuleUpdate::delete(r)]);
        m.flush();
        for i in 0..16u64 {
            let a = at.fwd(DeviceId(200 + i as u32));
            m.submit(DeviceId(1), [RuleUpdate::insert(Rule::new(
                Match::dst_prefix(&layout, i << 4, 4),
                1,
                a,
            ))]);
            m.flush();
            m.gc();
        }
        let bits: Vec<bool> = (0..8).map(|i| (0xA5u64 >> (7 - i)) & 1 == 1).collect();
        let c = snap.classify(&bits).expect("snapshot classifies its epoch");
        assert_eq!(c.action_at(DeviceId(0)), Some(a0_of(&snap, 0xA5)));
        let after: Vec<u64> = snap.classes.iter().map(|c| c.fingerprint).collect();
        assert_eq!(before, after, "snapshot is immutable under live churn");
        assert_eq!(m.pinned_epochs(), vec![1]);
        drop(snap);
        assert_eq!(m.retire_snapshots(), 0, "dropping the holder releases the pin");
    }

    // The action the sealed epoch (rule 0xA0/4 → device 9) forwards
    // header `hdr` to at device 0.
    fn a0_of(snap: &crate::snapshot::EpochSnapshot, hdr: u64) -> flash_netmodel::ActionId {
        let bits: Vec<bool> = (0..8).map(|i| (hdr >> (7 - i)) & 1 == 1).collect();
        snap.classify(&bits).unwrap().vector[0].1
    }

    #[test]
    fn what_if_reports_touched_classes_without_mutating() {
        let mut at = ActionTable::new();
        let layout = l();
        let mut m = mgr(usize::MAX);
        for i in 0..4u64 {
            let a = at.fwd(DeviceId(100 + i as u32));
            m.submit(DeviceId(0), [RuleUpdate::insert(Rule::new(
                Match::dst_prefix(&layout, i << 6, 2),
                1,
                a,
            ))]);
        }
        m.flush();
        let snap = m.publish_snapshot(7);
        let before: Vec<u64> = snap.classes.iter().map(|c| c.fingerprint).collect();
        let a9 = at.fwd(DeviceId(9));
        // An update inside the 0b01 quarter touches exactly that class.
        let u = RuleUpdate::insert(Rule::new(Match::dst_prefix(&layout, 0x50, 4), 9, a9));
        let touched = snap.what_if(&[u]);
        assert_eq!(touched.len(), 1);
        // Insert+delete cancel: nothing touched.
        let r = Rule::new(Match::dst_prefix(&layout, 0x50, 4), 9, a9);
        assert!(snap
            .what_if(&[RuleUpdate::insert(r), RuleUpdate::delete(r)])
            .is_empty());
        let after: Vec<u64> = snap.classes.iter().map(|c| c.fingerprint).collect();
        assert_eq!(before, after, "what-if is a dry run");
        assert_eq!(snap.classes.len(), m.model().len(), "live model untouched");
    }

    #[test]
    fn stats_expose_engine_telemetry() {
        let mut at = ActionTable::new();
        let a1 = at.fwd(DeviceId(9));
        let layout = l();
        let mut m = mgr(usize::MAX);
        let r = Rule::new(Match::dst_prefix(&layout, 0xA0, 4), 1, a1);
        m.submit(DeviceId(0), [RuleUpdate::insert(r)]);
        m.flush();
        let s = m.stats();
        assert!(s.engine.ops > 0);
        assert!(s.engine.live_nodes > 2);
        assert!(s.engine.roots_live > 0);
    }
}
