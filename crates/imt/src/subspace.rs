//! Input-space partitioning (§3.4).
//!
//! Flash partitions the header space into subspaces (one per pod in the
//! LNet settings, 112 subspaces) and runs an independent verifier per
//! subspace. A subspace is described by a prefix constraint on one field;
//! updates whose match cannot overlap the subspace are filtered out before
//! they reach the model manager, and every predicate inside the manager is
//! implicitly clipped to the subspace universe.

use flash_bdd::{Pred, PredEngine};
use flash_netmodel::{FieldId, HeaderLayout, Match, MatchKind};

/// A subspace: the headers whose `field` starts with the top `len` bits of
/// `value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SubspaceSpec {
    pub field: FieldId,
    pub value: u64,
    pub len: u32,
}

impl SubspaceSpec {
    /// The whole header space (a zero-length prefix).
    pub fn whole() -> Self {
        SubspaceSpec {
            field: FieldId(0),
            value: 0,
            len: 0,
        }
    }

    /// The subspace universe as a rooted predicate.
    pub fn universe(&self, layout: &HeaderLayout, engine: &mut PredEngine) -> Pred {
        let spec = layout.field(self.field);
        engine.prefix(spec.offset, spec.width, self.value, self.len)
    }

    /// Conservative test: can a rule with this match affect the subspace?
    pub fn admits(&self, m: &Match, layout: &HeaderLayout) -> bool {
        let w = layout.field(self.field).width;
        let mine = MatchKind::Prefix {
            value: self.value,
            len: self.len,
        };
        m.kind(self.field).may_overlap(&mine, w)
    }
}

/// A partition of the header space into disjoint, complementary subspaces.
#[derive(Clone, Debug)]
pub struct SubspacePlan {
    pub subspaces: Vec<SubspaceSpec>,
}

impl SubspacePlan {
    /// The trivial plan: a single whole-space verifier.
    pub fn single() -> Self {
        SubspacePlan {
            subspaces: vec![SubspaceSpec::whole()],
        }
    }

    /// Splits `field` on its top `bits` bits into `2^bits` equal subspaces
    /// (the paper partitions LNet by pod — each pod owns a prefix block).
    pub fn by_prefix_bits(layout: &HeaderLayout, field: FieldId, bits: u32) -> Self {
        let w = layout.field(field).width;
        assert!(bits <= w, "cannot split {w}-bit field on {bits} bits");
        let subspaces = (0..(1u64 << bits))
            .map(|i| SubspaceSpec {
                field,
                value: i << (w - bits),
                len: bits,
            })
            .collect();
        SubspacePlan { subspaces }
    }

    /// One subspace per explicit prefix (e.g. one per pod prefix). The
    /// prefixes must be disjoint; headers outside every prefix fall into a
    /// catch-all only if `add_catch_all` is set (its predicate is the
    /// complement, which `universe` cannot express, so the catch-all is
    /// represented as the zero-length prefix and must be used with rule
    /// filtering disabled).
    pub fn by_prefixes(field: FieldId, prefixes: &[(u64, u32)]) -> Self {
        SubspacePlan {
            subspaces: prefixes
                .iter()
                .map(|&(value, len)| SubspaceSpec { field, value, len })
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.subspaces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.subspaces.is_empty()
    }

    /// Which subspaces a rule match can affect.
    pub fn route(&self, m: &Match, layout: &HeaderLayout) -> Vec<usize> {
        self.subspaces
            .iter()
            .enumerate()
            .filter(|(_, s)| s.admits(m, layout))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l() -> HeaderLayout {
        HeaderLayout::new(&[("dst", 8), ("src", 8)])
    }

    #[test]
    fn whole_space_is_true() {
        let l = l();
        let mut engine = PredEngine::new(l.total_bits());
        let u = SubspaceSpec::whole().universe(&l, &mut engine);
        assert!(u.is_true());
    }

    #[test]
    fn prefix_bits_partition_is_complementary() {
        let l = l();
        let mut engine = PredEngine::new(l.total_bits());
        let plan = SubspacePlan::by_prefix_bits(&l, FieldId(0), 2);
        assert_eq!(plan.len(), 4);
        let mut union = engine.false_pred();
        for s in &plan.subspaces {
            let u = s.universe(&l, &mut engine);
            assert!(union.is_false() || engine.disjoint(&union, &u));
            union = engine.or(&union, &u);
        }
        assert!(union.is_true());
    }

    #[test]
    fn routing_filters_by_overlap() {
        let l = l();
        let plan = SubspacePlan::by_prefix_bits(&l, FieldId(0), 2);
        // dst 0b10xx_xxxx falls in subspace 2 only.
        let m = Match::dst_prefix(&l, 0b1010_0000, 4);
        assert_eq!(plan.route(&m, &l), vec![2]);
        // Wildcard dst routes everywhere.
        let any = Match::any(&l);
        assert_eq!(plan.route(&any, &l), vec![0, 1, 2, 3]);
        // A /1 prefix overlaps two subspaces.
        let half = Match::dst_prefix(&l, 0b1000_0000, 1);
        assert_eq!(plan.route(&half, &l), vec![2, 3]);
    }

    #[test]
    fn explicit_prefix_plan() {
        let l = l();
        let plan = SubspacePlan::by_prefixes(FieldId(0), &[(0x10, 4), (0x20, 4)]);
        assert_eq!(plan.len(), 2);
        let m = Match::dst_prefix(&l, 0x10, 4);
        assert_eq!(plan.route(&m, &l), vec![0]);
    }
}
