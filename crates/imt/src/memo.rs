//! Per-device memoization of compiled (and subspace-clipped) match
//! predicates.
//!
//! `calculate_atomic_overwrites` re-encodes `Match → Pred` for essentially
//! the whole FIB on every update block — the same prefix compiled hundreds
//! of times over a churn stream. A [`MatchMemo`] caches the *clipped*
//! predicate `⟦m⟧ ∧ clip` keyed by the match's interning handle
//! ([`MatchId`]), so each match is encoded once per FIB lifetime and a
//! lookup hashes 4 bytes instead of the whole constraint vector. Caching
//! the clipped form is sound for both shadow strategies because `(m ∧
//! clip) ∖ (s ∧ clip) = (m ∧ clip) ∧ ¬s`: accumulated-disjunction and
//! trie-assisted shadows compute the identical node either way.
//!
//! Entries hold rooted [`Pred`] handles, so they survive `collect()`
//! unchanged (the engine's mark-sweep is non-moving). The memo is
//! capacity-capped: when full, the least-recently-used half is evicted in
//! one pass. A memo is only valid for one `(engine, clip)` pair — in
//! practice one [`crate::ModelManager`], whose clip is fixed for its
//! lifetime. Rule deletion invalidates the rule's entry so the engine can
//! reclaim the nodes of matches that will not recur.

use flash_bdd::{Pred, PredEngine};
use flash_netmodel::{HeaderLayout, Match, MatchId};
use std::collections::HashMap;

struct MemoEntry {
    pred: Pred,
    /// Logical access time for the evict-half-by-recency policy.
    tick: u64,
    /// Lazily-probed cell mask over the engine's canonical index cells
    /// (`offset 0`, `k = num_vars.min(6)`), for the disjoint-diff
    /// shortcut. `None` until a masked lookup asks for it.
    mask: Option<u64>,
}

/// A capacity-capped `MatchId → Pred` cache. `capacity == 0` disables
/// caching entirely (every lookup encodes fresh, nothing is retained).
pub struct MatchMemo {
    map: HashMap<MatchId, MemoEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Default entry cap: comfortably holds the working set of a large FIB
/// while bounding rooted-handle growth on adversarial streams.
pub const DEFAULT_MATCH_MEMO_CAPACITY: usize = 8192;

impl MatchMemo {
    pub fn new(capacity: usize) -> Self {
        MatchMemo {
            map: HashMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A memo that never caches — the reference behaviour, and the right
    /// thing for one-shot callers that do not own a long-lived engine.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The clipped predicate `⟦mat⟧ ∧ clip`, from cache when possible.
    pub fn get_or_encode(
        &mut self,
        engine: &mut PredEngine,
        layout: &HeaderLayout,
        mat: &Match,
        clip: &Pred,
    ) -> Pred {
        let encode = |engine: &mut PredEngine| {
            let m = mat.to_pred(layout, engine);
            if clip.is_true() {
                m
            } else {
                engine.and(&m, clip)
            }
        };
        if self.capacity == 0 {
            return encode(engine);
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&mat.id()) {
            e.tick = tick;
            self.hits += 1;
            return e.pred.clone();
        }
        self.misses += 1;
        let pred = encode(engine);
        if self.map.len() >= self.capacity {
            self.evict_older_half();
        }
        self.map.insert(mat.id(), MemoEntry { pred: pred.clone(), tick, mask: None });
        pred
    }

    /// Like [`MatchMemo::get_or_encode`], but also returns the predicate's
    /// cell-occupancy mask over the engine's canonical cells (`offset 0`,
    /// `k = num_vars.min(6)` — the same convention as the class overlap
    /// index). The mask is probed at most once per cached entry, so a
    /// churn stream pays one probe per distinct match, not one per block.
    pub fn get_or_encode_with_mask(
        &mut self,
        engine: &mut PredEngine,
        layout: &HeaderLayout,
        mat: &Match,
        clip: &Pred,
    ) -> (Pred, u64) {
        let k = engine.num_vars().min(6);
        if self.capacity == 0 || k == 0 {
            let pred = self.get_or_encode(engine, layout, mat, clip);
            let mask = if k == 0 { u64::MAX } else { engine.cell_mask(&pred, 0, k) };
            return (pred, mask);
        }
        self.tick += 1;
        let tick = self.tick;
        // Single-lookup hot path: the cursor in `calculate_atomic_overwrites`
        // calls this once per FIB rule per block, so a second map probe here
        // would show up in profiles.
        if let Some(e) = self.map.get_mut(&mat.id()) {
            e.tick = tick;
            self.hits += 1;
            let pred = e.pred.clone();
            if let Some(m) = e.mask {
                return (pred, m);
            }
            let m = engine.cell_mask(&pred, 0, k);
            if let Some(e) = self.map.get_mut(&mat.id()) {
                e.mask = Some(m);
            }
            return (pred, m);
        }
        self.misses += 1;
        let pred = {
            let m = mat.to_pred(layout, engine);
            if clip.is_true() {
                m
            } else {
                engine.and(&m, clip)
            }
        };
        let mask = engine.cell_mask(&pred, 0, k);
        if self.map.len() >= self.capacity {
            self.evict_older_half();
        }
        self.map
            .insert(mat.id(), MemoEntry { pred: pred.clone(), tick, mask: Some(mask) });
        (pred, mask)
    }

    /// Drops one match's entry (rule deleted: its nodes should become
    /// collectable rather than stay rooted forever).
    pub fn invalidate(&mut self, mat: &Match) {
        self.map.remove(&mat.id());
    }

    /// Drops everything (e.g. when the engine or clip changes).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// One-pass eviction: keep only entries accessed more recently than
    /// the median tick — at least half the map goes.
    fn evict_older_half(&mut self) {
        let mut ticks: Vec<u64> = self.map.values().map(|e| e.tick).collect();
        ticks.sort_unstable();
        let cut = ticks[ticks.len() / 2];
        self.map.retain(|_, e| e.tick > cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_netmodel::HeaderLayout;

    fn layout() -> HeaderLayout {
        HeaderLayout::new(&[("dst", 8)])
    }

    #[test]
    fn caches_and_counts_hits() {
        let l = layout();
        let mut e = PredEngine::new(l.total_bits());
        let mut memo = MatchMemo::new(16);
        let clip = e.true_pred();
        let m = Match::dst_prefix(&l, 0xA0, 4);
        let p1 = memo.get_or_encode(&mut e, &l, &m, &clip);
        let p2 = memo.get_or_encode(&mut e, &l, &m, &clip);
        assert_eq!(p1, p2);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        memo.invalidate(&m);
        let _ = memo.get_or_encode(&mut e, &l, &m, &clip);
        assert_eq!((memo.hits(), memo.misses()), (1, 2));
    }

    #[test]
    fn clips_cached_predicates() {
        let l = layout();
        let mut e = PredEngine::new(l.total_bits());
        let mut memo = MatchMemo::new(16);
        let clip = e.prefix(0, 8, 0x80, 1);
        let m = Match::dst_prefix(&l, 0xA0, 4);
        let cached = memo.get_or_encode(&mut e, &l, &m, &clip);
        let direct = m.to_pred(&l, &mut e);
        let expect = e.and(&direct, &clip);
        assert_eq!(cached, expect);
    }

    #[test]
    fn entries_survive_collect() {
        let l = layout();
        let mut e = PredEngine::new(l.total_bits());
        let mut memo = MatchMemo::new(16);
        let clip = e.true_pred();
        let m = Match::dst_prefix(&l, 0x40, 3);
        let before = memo.get_or_encode(&mut e, &l, &m, &clip);
        e.collect();
        let after = memo.get_or_encode(&mut e, &l, &m, &clip);
        assert_eq!(before, after);
        assert_eq!(memo.hits(), 1, "post-collect lookup must hit");
    }

    #[test]
    fn eviction_keeps_recent_half() {
        let l = layout();
        let mut e = PredEngine::new(l.total_bits());
        let mut memo = MatchMemo::new(8);
        let clip = e.true_pred();
        for v in 0..16u64 {
            let m = Match::dst_prefix(&l, v << 4, 4);
            let _ = memo.get_or_encode(&mut e, &l, &m, &clip);
            assert!(memo.len() <= 8);
        }
        // The most recent insert always survives its own eviction.
        let last = Match::dst_prefix(&l, 15 << 4, 4);
        let hits = memo.hits();
        let _ = memo.get_or_encode(&mut e, &l, &last, &clip);
        assert_eq!(memo.hits(), hits + 1);
    }

    #[test]
    fn disabled_memo_never_retains() {
        let l = layout();
        let mut e = PredEngine::new(l.total_bits());
        let mut memo = MatchMemo::disabled();
        let clip = e.true_pred();
        let m = Match::dst_prefix(&l, 0xC0, 2);
        let a = memo.get_or_encode(&mut e, &l, &m, &clip);
        let b = memo.get_or_encode(&mut e, &l, &m, &clip);
        assert_eq!(a, b, "hash-consing still dedups the nodes");
        assert!(memo.is_empty());
        assert_eq!((memo.hits(), memo.misses()), (0, 0));
    }
}
