//! Fast Inverse Model Transformation (Fast IMT) — the core contribution of
//! the Flash paper (§3 and Appendix C).
//!
//! The inverse model (equivalence-class representation) of a data plane is
//! a set of pairs `(predicate, action vector)` that are unique, mutually
//! exclusive and complementary. This crate provides:
//!
//! * [`pat`] — the **persistent action tree** (§3.4): a hash-consed
//!   persistent treap storing action vectors with structural sharing, so
//!   that overwriting a handful of devices in an `N`-device vector costs
//!   `O(k · log N)` and vector equality is an integer comparison.
//! * [`model`] — the [`model::InverseModel`] with its validity invariants
//!   and the model-overwrite operator `⊗` (Definition 9), plus the cell
//!   overlap index that localizes which classes an overwrite can touch.
//! * [`memo`] — the capacity-capped `Match → Pred` cache that encodes
//!   each FIB match once per lifetime instead of once per block.
//! * [`mr2`] — the **MR² algorithm**: Algorithm 1 (merge-based
//!   decomposition of a native update block into atomic conflict-free
//!   overwrites), Reduce I (aggregation by action), Reduce II (aggregation
//!   by predicate), and the phase-instrumented driver used by Figure 11.
//! * [`manager`] — the model manager of Figure 1: per-device FIB
//!   snapshots, the block-size-threshold (BST) buffer, subspace filtering,
//!   and the per-update compatibility mode.
//! * [`subspace`] — input-space partitioning (§3.4) used to run many
//!   verifiers in parallel.

pub mod manager;
pub mod memo;
pub mod model;
pub mod mr2;
pub mod pat;
pub mod snapshot;
pub mod subspace;

pub use manager::{
    ImtTuning, ModelManager, ModelManagerConfig, PhaseTimings, ShadowStrategy, UpdateStats,
};
pub use memo::MatchMemo;
pub use model::{IndexStats, InverseModel, ModelEntry};
pub use mr2::{AtomicOverwrite, Overwrite};
pub use pat::{PatId, PatStore, PAT_NIL};
pub use snapshot::{EpochSnapshot, SnapshotClass};
pub use subspace::{SubspacePlan, SubspaceSpec};
