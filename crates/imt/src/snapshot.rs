//! Epoch snapshots: immutable, thread-safe views of one manager's model
//! at a sealed epoch, for the concurrent query tier.
//!
//! A snapshot is **cheap**: `O(classes)` handle clones and one decoded
//! action vector per *distinct* `PatId` ever snapshotted (memoized —
//! `PatId`s are stable in the append-only PAT arena). No BDD structure
//! is copied. Instead, each class predicate's root id is exported
//! alongside a [`NodeView`] over the owning engine's non-moving node
//! arena, and the manager keeps a **pin** — live [`Pred`] clones of
//! every class — for as long as the snapshot has holders. Pinned roots
//! survive the engine's mark-sweep collections with ids and structure
//! intact, which is exactly the [`NodeView`] safety contract.
//!
//! ## Lifecycle
//!
//! [`crate::ModelManager::publish_snapshot`] exports the current model
//! under a caller-supplied epoch sequence and registers the pin. Each
//! snapshot carries a liveness token (`Arc`); the manager holds only a
//! `Weak` and prunes dead pins at the next publish (or explicitly via
//! [`crate::ModelManager::retire_snapshots`]). Dropping the last
//! `Arc<EpochSnapshot>` therefore releases the roots, and the next
//! collection in the owning engine reclaims whatever the live model no
//! longer reaches — old epochs cost nothing once unpinned.
//!
//! ## Consistency
//!
//! A snapshot is built between flushes, so it observes **exactly one
//! sealed epoch**: every class predicate and action vector comes from
//! the same post-apply model state, and the structure it references is
//! frozen by the pin. Queries against it never block — and are never
//! blocked by — ingestion in the owning manager.

use flash_bdd::{NodeId, NodeView};
use flash_netmodel::{ActionId, DeviceId, HeaderLayout, Match, MatchKind, RuleUpdate};
use std::sync::Arc;

use crate::subspace::SubspaceSpec;

/// One frozen equivalence class: the root of its predicate in the
/// owning engine's arena, its engine-independent fingerprint, and its
/// decoded forwarding vector (device-ascending, explicit non-drop
/// entries only — absent devices forward with the default drop action).
#[derive(Clone, Debug)]
pub struct SnapshotClass {
    /// Predicate root; only meaningful through the snapshot's [`NodeView`].
    pub root: NodeId,
    /// Canonical cross-engine class fingerprint (see
    /// [`crate::ModelManager::class_keys`]).
    pub fingerprint: u64,
    /// Decoded action vector, shared across snapshots of the same epoch
    /// lineage (memoized per `PatId`).
    pub vector: Arc<Vec<(DeviceId, ActionId)>>,
}

impl SnapshotClass {
    /// The action this class's headers take at `dev`, or `None` when the
    /// device forwards with its default (drop) action.
    pub fn action_at(&self, dev: DeviceId) -> Option<ActionId> {
        self.vector
            .binary_search_by_key(&dev.0, |(d, _)| d.0)
            .ok()
            .map(|i| self.vector[i].1)
    }
}

/// An immutable, `Send + Sync` view of one subspace model at a sealed
/// epoch. See the module docs for lifecycle and consistency.
pub struct EpochSnapshot {
    /// The epoch sequence this snapshot observes (caller-assigned,
    /// monotone per manager).
    pub seq: u64,
    /// The subspace the owning manager is responsible for.
    pub subspace: SubspaceSpec,
    /// Header layout shared by every predicate and match in this space.
    pub layout: HeaderLayout,
    /// Thread-safe read surface over the owning engine's node arena.
    pub view: NodeView,
    /// The frozen equivalence classes.
    pub classes: Vec<SnapshotClass>,
    /// Liveness token: the owning manager holds a `Weak` to this and
    /// keeps the class roots pinned while any holder remains.
    _alive: Arc<()>,
}

/// The manager-side pin of one published snapshot: live `Pred` clones
/// keeping every class root alive, dropped once no snapshot holder
/// remains.
pub(crate) struct SnapshotPin {
    pub(crate) seq: u64,
    /// Never read — held solely so the engine's root set keeps the
    /// snapshot's nodes alive until this pin is dropped.
    pub(crate) _preds: Vec<flash_bdd::Pred>,
    pub(crate) alive: std::sync::Weak<()>,
}

impl EpochSnapshot {
    pub(crate) fn new(
        seq: u64,
        subspace: SubspaceSpec,
        layout: HeaderLayout,
        view: NodeView,
        classes: Vec<SnapshotClass>,
        alive: Arc<()>,
    ) -> Self {
        EpochSnapshot { seq, subspace, layout, view, classes, _alive: alive }
    }

    /// The class containing the concrete header `bits` (logical-bit
    /// indexed). Classes are mutually exclusive, so the first `eval` hit
    /// is the answer; headers outside this subspace return `None`.
    pub fn classify(&self, bits: &[bool]) -> Option<&SnapshotClass> {
        self.classes.iter().find(|c| self.view.eval(c.root, bits))
    }

    /// Every class whose predicate intersects the partial assignment
    /// `constraint` (logical-bit indexed, `None` = free).
    pub fn intersecting<'a>(
        &'a self,
        constraint: &'a [Option<bool>],
    ) -> impl Iterator<Item = &'a SnapshotClass> + 'a {
        self.classes.iter().filter(move |c| self.view.intersects(c.root, constraint))
    }

    /// A partial assignment constraining `field` to the `len`-bit prefix
    /// `value` (MSB-first within the field, matching the encoders).
    pub fn prefix_constraint(&self, field: usize, value: u64, len: u32) -> Vec<Option<bool>> {
        let mut c = vec![None; self.layout.total_bits() as usize];
        let spec = self.layout.field(flash_netmodel::FieldId(field as u32));
        let len = len.min(spec.width);
        for i in 0..len {
            let bit = (value >> (spec.width - 1 - i)) & 1 == 1;
            c[(spec.offset + i) as usize] = Some(bit);
        }
        c
    }

    /// A partial assignment equivalent to `mat` when every field is
    /// ternary-expressible; `Range` fields are left **free** (a
    /// conservative over-approximation: every header the match selects
    /// satisfies the returned constraint).
    pub fn match_constraint(&self, mat: &Match) -> Vec<Option<bool>> {
        let mut c = vec![None; self.layout.total_bits() as usize];
        for ((_, spec), kind) in self.layout.fields().zip(mat.kinds().iter()) {
            if let Some((value, mask)) = kind.as_ternary(spec.width) {
                for i in 0..spec.width {
                    let sel = spec.width - 1 - i;
                    if (mask >> sel) & 1 == 1 {
                        c[(spec.offset + i) as usize] = Some((value >> sel) & 1 == 1);
                    }
                }
            } else {
                debug_assert!(matches!(kind, MatchKind::Range { .. }));
            }
        }
        c
    }

    /// Dry-run what-if: which classes would a block of updates touch?
    ///
    /// Nets the block through the MR² canceling pass, then reports every
    /// class whose predicate intersects a surviving update's match — the
    /// set the real pipeline's map/apply phases would split or move.
    /// Purely read-only: the snapshot (and the owning model) are not
    /// mutated; `Range` match fields over-approximate (see
    /// [`EpochSnapshot::match_constraint`]). Returns the touched classes'
    /// fingerprints, deduplicated and sorted.
    pub fn what_if(&self, block: &[RuleUpdate]) -> Vec<u64> {
        let surviving = crate::mr2::cancel_updates(block);
        let mut touched: Vec<u64> = Vec::new();
        for u in &surviving {
            let constraint = self.match_constraint(&u.rule.mat);
            for c in self.intersecting(&constraint) {
                touched.push(c.fingerprint);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// Order-independent fingerprint of the whole snapshot: the sorted
    /// class fingerprints hashed together. Equal across managers holding
    /// semantically identical models.
    pub fn model_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut keys: Vec<u64> = self.classes.iter().map(|c| c.fingerprint).collect();
        keys.sort_unstable();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        keys.hash(&mut h);
        h.finish()
    }
}

impl std::fmt::Debug for EpochSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochSnapshot")
            .field("seq", &self.seq)
            .field("classes", &self.classes.len())
            .finish()
    }
}
