//! The inverse model — equivalence-class representation of a data plane
//! (§3.1 and Definition 6 of Appendix C).
//!
//! An [`InverseModel`] is a set of `(predicate, action-vector)` pairs that
//! is (1) unique in vectors, (2) mutually exclusive in predicates and
//! (3) complementary (the predicates union to the subspace universe). The
//! model-overwrite operator `⊗` (Definition 9) is implemented as the
//! paper's "cross product".
//!
//! Predicates are rooted [`Pred`] handles: the model never has to collect
//! roots or remap ids — the engine's automatic mark-sweep GC keeps every
//! entry alive for exactly as long as the model holds it.

use crate::mr2::Overwrite;
use crate::pat::{PatId, PatStore, PAT_NIL};
use flash_bdd::{Pred, PredEngine};
use std::collections::HashMap;

/// One equivalence class: the headers in `pred` experience exactly the
/// network-wide forwarding behaviour `vector`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelEntry {
    pub pred: Pred,
    pub vector: PatId,
}

/// The equivalence-class representation `M = {(p_j, y_j)}`.
#[derive(Clone, Debug)]
pub struct InverseModel {
    /// The universe predicate of this model's subspace (TRUE for a
    /// whole-network model).
    universe: Pred,
    entries: Vec<ModelEntry>,
    /// vector → index into `entries`, maintaining the uniqueness invariant.
    by_vector: HashMap<PatId, usize>,
}

impl InverseModel {
    /// The initial model: the whole `universe` maps to the all-default
    /// action vector (every FIB is just its default rule).
    pub fn new(universe: Pred) -> Self {
        let mut by_vector = HashMap::new();
        by_vector.insert(PAT_NIL, 0);
        InverseModel {
            entries: vec![ModelEntry { pred: universe.clone(), vector: PAT_NIL }],
            universe,
            by_vector,
        }
    }

    pub fn universe(&self) -> &Pred {
        &self.universe
    }

    /// Number of equivalence classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// The entry whose predicate contains the concrete header `bits`.
    pub fn classify(&self, engine: &PredEngine, bits: &[bool]) -> Option<ModelEntry> {
        self.entries.iter().find(|e| engine.eval(&e.pred, bits)).cloned()
    }

    /// Applies one conflict-free overwrite via the cross product
    /// (Definition 9): every class intersecting `ow.pred` is split; the
    /// intersected part moves to the class with `ow.writes` applied.
    ///
    /// Returns the number of classes whose predicate intersected the
    /// overwrite.
    pub fn apply_overwrite(
        &mut self,
        engine: &mut PredEngine,
        pat: &mut PatStore,
        ow: &Overwrite,
    ) -> usize {
        if ow.pred.is_false() || ow.writes.is_empty() {
            return 0;
        }
        let mut touched = 0usize;
        // (new_vector, predicate-to-add) accumulated across splits.
        let mut moved: Vec<(PatId, Pred)> = Vec::new();
        // Class predicates are pairwise disjoint, so the still-unmatched
        // part of the overwrite shrinks as classes consume it; once it is
        // empty no later class can intersect and the scan stops early.
        let mut remaining = ow.pred.clone();
        let mut i = 0;
        while i < self.entries.len() {
            if remaining.is_false() {
                break;
            }
            let (e_pred, e_vector) = {
                let e = &self.entries[i];
                (e.pred.clone(), e.vector)
            };
            let inter = engine.and(&e_pred, &remaining);
            if inter.is_false() {
                i += 1;
                continue;
            }
            touched += 1;
            remaining = engine.diff(&remaining, &inter);
            let new_vec = pat.overwrite(e_vector, &ow.writes);
            if new_vec == e_vector {
                // Overwrite is a no-op for this class (writes repeat the
                // existing actions); nothing moves.
                i += 1;
                continue;
            }
            let rest = engine.diff(&e_pred, &inter);
            moved.push((new_vec, inter));
            if rest.is_false() {
                // Whole class moves: remove it.
                self.remove_at(i);
                // Do not advance i: a new entry occupies this slot.
            } else {
                self.entries[i].pred = rest;
                i += 1;
            }
        }
        for (vec, pred) in moved {
            self.add_pred(engine, vec, pred);
        }
        touched
    }

    /// Applies a batch of overwrites in order (they compose by Lemma 1).
    pub fn apply_overwrites(
        &mut self,
        engine: &mut PredEngine,
        pat: &mut PatStore,
        ows: &[Overwrite],
    ) -> usize {
        ows.iter().map(|ow| self.apply_overwrite(engine, pat, ow)).sum()
    }

    fn remove_at(&mut self, i: usize) {
        let removed = self.entries.swap_remove(i);
        self.by_vector.remove(&removed.vector);
        if i < self.entries.len() {
            let moved_vec = self.entries[i].vector;
            self.by_vector.insert(moved_vec, i);
        }
    }

    /// Adds `pred` to the class with vector `vec`, creating it if needed.
    fn add_pred(&mut self, engine: &mut PredEngine, vec: PatId, pred: Pred) {
        if pred.is_false() {
            return;
        }
        match self.by_vector.get(&vec) {
            Some(&i) => {
                let merged = engine.or(&self.entries[i].pred, &pred);
                self.entries[i].pred = merged;
            }
            None => {
                self.by_vector.insert(vec, self.entries.len());
                self.entries.push(ModelEntry { pred, vector: vec });
            }
        }
    }

    /// Checks the three validity invariants of Definition 6. `O(|M|²)`
    /// predicate work — test/debug use only.
    pub fn check_invariants(&self, engine: &mut PredEngine) -> Result<(), String> {
        // unique vectors
        let mut seen = std::collections::HashSet::new();
        for e in &self.entries {
            if !seen.insert(e.vector) {
                return Err(format!("duplicate action vector {:?}", e.vector));
            }
            if e.pred.is_false() {
                return Err("empty predicate in model".into());
            }
        }
        // mutually exclusive
        for i in 0..self.entries.len() {
            for j in (i + 1)..self.entries.len() {
                if !engine.disjoint(&self.entries[i].pred, &self.entries[j].pred) {
                    return Err(format!("classes {i} and {j} overlap"));
                }
            }
        }
        // complementary w.r.t. the universe
        let union = engine.or_many(self.entries.iter().map(|e| &e.pred));
        if union != self.universe {
            return Err("classes do not cover the universe".into());
        }
        Ok(())
    }

    /// Approximate resident bytes (entries + index), excluding the shared
    /// BDD/PAT arenas which are reported by their own stores.
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<ModelEntry>() + self.by_vector.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_netmodel::{ActionId, DeviceId};

    fn ow(pred: Pred, writes: Vec<(u32, u32)>) -> Overwrite {
        Overwrite {
            pred,
            writes: writes
                .into_iter()
                .map(|(d, a)| (DeviceId(d), ActionId(a)))
                .collect(),
        }
    }

    #[test]
    fn initial_model_is_single_default_class() {
        let e = PredEngine::new(8);
        let m = InverseModel::new(e.true_pred());
        assert_eq!(m.len(), 1);
        assert_eq!(m.entries()[0].vector, PAT_NIL);
        assert!(m.entries()[0].pred.is_true());
    }

    #[test]
    fn overwrite_splits_a_class() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p = e.prefix(0, 8, 0xA0, 4);
        let touched = m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, 1)]));
        assert_eq!(touched, 1);
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut e).unwrap();
    }

    #[test]
    fn overwrite_with_same_action_is_noop() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p = e.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, 1)]));
        let len = m.len();
        // Rewriting the same action on a sub-predicate must not split.
        let sub = e.prefix(0, 8, 0xA8, 5);
        m.apply_overwrite(&mut e, &mut pat, &ow(sub, vec![(0, 1)]));
        assert_eq!(m.len(), len);
        m.check_invariants(&mut e).unwrap();
    }

    #[test]
    fn classes_with_equal_vectors_merge() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p1 = e.prefix(0, 8, 0xA0, 4);
        let p2 = e.prefix(0, 8, 0xB0, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p1, vec![(0, 1)]));
        m.apply_overwrite(&mut e, &mut pat, &ow(p2, vec![(0, 1)]));
        // Both prefixes map device 0 to action 1 → must be ONE class.
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut e).unwrap();
    }

    #[test]
    fn whole_class_moves_when_covered() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p = e.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p.clone(), vec![(0, 1)]));
        // Now overwrite the exact same predicate with a different action:
        // the (p, [0→1]) class must fully move, not leave an empty shell.
        m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, 2)]));
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut e).unwrap();
        for entry in m.entries() {
            assert!(!entry.pred.is_false());
        }
    }

    #[test]
    fn classify_finds_the_unique_class() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p = e.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, 1)]));
        let bits_a: Vec<bool> = (0..8).map(|i| (0xA5u8 >> (7 - i)) & 1 == 1).collect();
        let entry = m.classify(&e, &bits_a).unwrap();
        assert_eq!(pat.get(entry.vector, DeviceId(0)), ActionId(1));
        let bits_b: Vec<bool> = (0..8).map(|i| (0x15u8 >> (7 - i)) & 1 == 1).collect();
        let entry = m.classify(&e, &bits_b).unwrap();
        assert_eq!(entry.vector, PAT_NIL);
    }

    #[test]
    fn subspace_universe_respected() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let universe = e.prefix(0, 8, 0x80, 1); // top half of the space
        let mut m = InverseModel::new(universe.clone());
        let p = e.prefix(0, 8, 0xA0, 4);
        let clipped = e.and(&p, &universe);
        m.apply_overwrite(&mut e, &mut pat, &ow(clipped, vec![(0, 1)]));
        m.check_invariants(&mut e).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn gc_roundtrip() {
        let mut e = PredEngine::new(16);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        for i in 0..8u64 {
            let p = e.prefix(0, 16, i << 12, 4);
            m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, (i + 1) as u32)]));
        }
        let before = m.len();
        // The model's handles are roots: a collection must not disturb it.
        let reclaimed = e.collect();
        assert_eq!(m.len(), before);
        m.check_invariants(&mut e).unwrap();
        // And a second collection is equally safe.
        e.collect();
        m.check_invariants(&mut e).unwrap();
        let _ = reclaimed;
    }

    #[test]
    fn empty_overwrite_is_ignored() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let f = e.false_pred();
        let t = e.true_pred();
        assert_eq!(m.apply_overwrite(&mut e, &mut pat, &ow(f, vec![(0, 1)])), 0);
        assert_eq!(m.apply_overwrite(&mut e, &mut pat, &ow(t, vec![])), 0);
        assert_eq!(m.len(), 1);
    }
}
