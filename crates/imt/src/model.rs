//! The inverse model — equivalence-class representation of a data plane
//! (§3.1 and Definition 6 of Appendix C).
//!
//! An [`InverseModel`] is a set of `(predicate, action-vector)` pairs that
//! is (1) unique in vectors, (2) mutually exclusive in predicates and
//! (3) complementary (the predicates union to the subspace universe). The
//! model-overwrite operator `⊗` (Definition 9) is implemented as the
//! paper's "cross product".

use crate::mr2::Overwrite;
use crate::pat::{PatId, PatStore, PAT_NIL};
use flash_bdd::{Bdd, NodeId, FALSE};
use std::collections::HashMap;

/// One equivalence class: the headers in `pred` experience exactly the
/// network-wide forwarding behaviour `vector`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelEntry {
    pub pred: NodeId,
    pub vector: PatId,
}

/// The equivalence-class representation `M = {(p_j, y_j)}`.
#[derive(Clone, Debug)]
pub struct InverseModel {
    /// The universe predicate of this model's subspace (TRUE for a
    /// whole-network model).
    universe: NodeId,
    entries: Vec<ModelEntry>,
    /// vector → index into `entries`, maintaining the uniqueness invariant.
    by_vector: HashMap<PatId, usize>,
}

impl InverseModel {
    /// The initial model: the whole `universe` maps to the all-default
    /// action vector (every FIB is just its default rule).
    pub fn new(universe: NodeId) -> Self {
        let mut by_vector = HashMap::new();
        by_vector.insert(PAT_NIL, 0);
        InverseModel {
            universe,
            entries: vec![ModelEntry {
                pred: universe,
                vector: PAT_NIL,
            }],
            by_vector,
        }
    }

    pub fn universe(&self) -> NodeId {
        self.universe
    }

    /// Number of equivalence classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// The entry whose predicate contains the concrete header `bits`.
    pub fn classify(&self, bdd: &Bdd, bits: &[bool]) -> Option<ModelEntry> {
        self.entries
            .iter()
            .copied()
            .find(|e| bdd.eval(e.pred, bits))
    }

    /// Applies one conflict-free overwrite via the cross product
    /// (Definition 9): every class intersecting `ow.pred` is split; the
    /// intersected part moves to the class with `ow.writes` applied.
    ///
    /// Returns the number of classes whose predicate intersected the
    /// overwrite.
    pub fn apply_overwrite(&mut self, bdd: &mut Bdd, pat: &mut PatStore, ow: &Overwrite) -> usize {
        if ow.pred == FALSE || ow.writes.is_empty() {
            return 0;
        }
        let mut touched = 0usize;
        // (new_vector, predicate-to-add) accumulated across splits.
        let mut moved: Vec<(PatId, NodeId)> = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            let e = self.entries[i];
            let inter = bdd.and(e.pred, ow.pred);
            if inter == FALSE {
                i += 1;
                continue;
            }
            touched += 1;
            let new_vec = pat.overwrite(e.vector, &ow.writes);
            if new_vec == e.vector {
                // Overwrite is a no-op for this class (writes repeat the
                // existing actions); nothing moves.
                i += 1;
                continue;
            }
            let rest = bdd.diff(e.pred, ow.pred);
            moved.push((new_vec, inter));
            if rest == FALSE {
                // Whole class moves: remove it.
                self.remove_at(i);
                // Do not advance i: a new entry occupies this slot.
            } else {
                self.entries[i].pred = rest;
                i += 1;
            }
        }
        for (vec, pred) in moved {
            self.add_pred(bdd, vec, pred);
        }
        touched
    }

    /// Applies a batch of overwrites in order (they compose by Lemma 1).
    pub fn apply_overwrites(
        &mut self,
        bdd: &mut Bdd,
        pat: &mut PatStore,
        ows: &[Overwrite],
    ) -> usize {
        ows.iter()
            .map(|ow| self.apply_overwrite(bdd, pat, ow))
            .sum()
    }

    fn remove_at(&mut self, i: usize) {
        let removed = self.entries.swap_remove(i);
        self.by_vector.remove(&removed.vector);
        if i < self.entries.len() {
            let moved_vec = self.entries[i].vector;
            self.by_vector.insert(moved_vec, i);
        }
    }

    /// Adds `pred` to the class with vector `vec`, creating it if needed.
    fn add_pred(&mut self, bdd: &mut Bdd, vec: PatId, pred: NodeId) {
        if pred == FALSE {
            return;
        }
        match self.by_vector.get(&vec) {
            Some(&i) => {
                let merged = bdd.or(self.entries[i].pred, pred);
                self.entries[i].pred = merged;
            }
            None => {
                self.by_vector.insert(vec, self.entries.len());
                self.entries.push(ModelEntry { pred, vector: vec });
            }
        }
    }

    /// Checks the three validity invariants of Definition 6. `O(|M|²)`
    /// predicate work — test/debug use only.
    pub fn check_invariants(&self, bdd: &mut Bdd) -> Result<(), String> {
        // unique vectors
        let mut seen = std::collections::HashSet::new();
        for e in &self.entries {
            if !seen.insert(e.vector) {
                return Err(format!("duplicate action vector {:?}", e.vector));
            }
            if e.pred == FALSE {
                return Err("empty predicate in model".into());
            }
        }
        // mutually exclusive
        for i in 0..self.entries.len() {
            for j in (i + 1)..self.entries.len() {
                if bdd.and(self.entries[i].pred, self.entries[j].pred) != FALSE {
                    return Err(format!("classes {i} and {j} overlap"));
                }
            }
        }
        // complementary w.r.t. the universe
        let mut union = FALSE;
        for e in &self.entries {
            union = bdd.or(union, e.pred);
        }
        if union != self.universe {
            return Err("classes do not cover the universe".into());
        }
        Ok(())
    }

    /// GC support: the BDD roots this model needs kept alive.
    pub fn bdd_roots(&self) -> Vec<NodeId> {
        let mut roots: Vec<NodeId> = self.entries.iter().map(|e| e.pred).collect();
        roots.push(self.universe);
        roots
    }

    /// GC support: rewrites predicates after a [`Bdd::gc`] using the root
    /// list returned by [`Self::bdd_roots`] and the remapped ids.
    pub fn remap_bdd(&mut self, remapped: &[NodeId]) {
        for (e, &r) in self.entries.iter_mut().zip(remapped.iter()) {
            e.pred = r;
        }
        self.universe = remapped[self.entries.len()];
    }

    /// Approximate resident bytes (entries + index), excluding the shared
    /// BDD/PAT arenas which are reported by their own stores.
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<ModelEntry>() + self.by_vector.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_bdd::TRUE;
    use flash_netmodel::{ActionId, DeviceId};

    fn ow(pred: NodeId, writes: Vec<(u32, u32)>) -> Overwrite {
        Overwrite {
            pred,
            writes: writes
                .into_iter()
                .map(|(d, a)| (DeviceId(d), ActionId(a)))
                .collect(),
        }
    }

    #[test]
    fn initial_model_is_single_default_class() {
        let m = InverseModel::new(TRUE);
        assert_eq!(m.len(), 1);
        assert_eq!(m.entries()[0].vector, PAT_NIL);
        assert_eq!(m.entries()[0].pred, TRUE);
    }

    #[test]
    fn overwrite_splits_a_class() {
        let mut bdd = Bdd::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(TRUE);
        let p = bdd.prefix(0, 8, 0xA0, 4);
        let touched = m.apply_overwrite(&mut bdd, &mut pat, &ow(p, vec![(0, 1)]));
        assert_eq!(touched, 1);
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut bdd).unwrap();
    }

    #[test]
    fn overwrite_with_same_action_is_noop() {
        let mut bdd = Bdd::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(TRUE);
        let p = bdd.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut bdd, &mut pat, &ow(p, vec![(0, 1)]));
        let len = m.len();
        // Rewriting the same action on a sub-predicate must not split.
        let sub = bdd.prefix(0, 8, 0xA8, 5);
        m.apply_overwrite(&mut bdd, &mut pat, &ow(sub, vec![(0, 1)]));
        assert_eq!(m.len(), len);
        m.check_invariants(&mut bdd).unwrap();
    }

    #[test]
    fn classes_with_equal_vectors_merge() {
        let mut bdd = Bdd::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(TRUE);
        let p1 = bdd.prefix(0, 8, 0xA0, 4);
        let p2 = bdd.prefix(0, 8, 0xB0, 4);
        m.apply_overwrite(&mut bdd, &mut pat, &ow(p1, vec![(0, 1)]));
        m.apply_overwrite(&mut bdd, &mut pat, &ow(p2, vec![(0, 1)]));
        // Both prefixes map device 0 to action 1 → must be ONE class.
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut bdd).unwrap();
    }

    #[test]
    fn whole_class_moves_when_covered() {
        let mut bdd = Bdd::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(TRUE);
        let p = bdd.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut bdd, &mut pat, &ow(p, vec![(0, 1)]));
        // Now overwrite the exact same predicate with a different action:
        // the (p, [0→1]) class must fully move, not leave an empty shell.
        m.apply_overwrite(&mut bdd, &mut pat, &ow(p, vec![(0, 2)]));
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut bdd).unwrap();
        for e in m.entries() {
            assert_ne!(e.pred, FALSE);
        }
    }

    #[test]
    fn classify_finds_the_unique_class() {
        let mut bdd = Bdd::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(TRUE);
        let p = bdd.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut bdd, &mut pat, &ow(p, vec![(0, 1)]));
        let bits_a: Vec<bool> = (0..8).map(|i| (0xA5u8 >> (7 - i)) & 1 == 1).collect();
        let e = m.classify(&bdd, &bits_a).unwrap();
        assert_eq!(pat.get(e.vector, DeviceId(0)), ActionId(1));
        let bits_b: Vec<bool> = (0..8).map(|i| (0x15u8 >> (7 - i)) & 1 == 1).collect();
        let e = m.classify(&bdd, &bits_b).unwrap();
        assert_eq!(e.vector, PAT_NIL);
    }

    #[test]
    fn subspace_universe_respected() {
        let mut bdd = Bdd::new(8);
        let mut pat = PatStore::new();
        let universe = bdd.prefix(0, 8, 0x80, 1); // top half of the space
        let mut m = InverseModel::new(universe);
        let p = bdd.prefix(0, 8, 0xA0, 4);
        let clipped = bdd.and(p, universe);
        m.apply_overwrite(&mut bdd, &mut pat, &ow(clipped, vec![(0, 1)]));
        m.check_invariants(&mut bdd).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn gc_roundtrip() {
        let mut bdd = Bdd::new(16);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(TRUE);
        for i in 0..8u64 {
            let p = bdd.prefix(0, 16, i << 12, 4);
            m.apply_overwrite(&mut bdd, &mut pat, &ow(p, vec![(0, (i + 1) as u32)]));
        }
        let before = m.len();
        let roots = m.bdd_roots();
        let remapped = bdd.gc(&roots);
        m.remap_bdd(&remapped);
        assert_eq!(m.len(), before);
        m.check_invariants(&mut bdd).unwrap();
    }

    #[test]
    fn empty_overwrite_is_ignored() {
        let mut bdd = Bdd::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(TRUE);
        assert_eq!(
            m.apply_overwrite(&mut bdd, &mut pat, &ow(FALSE, vec![(0, 1)])),
            0
        );
        assert_eq!(m.apply_overwrite(&mut bdd, &mut pat, &ow(TRUE, vec![])), 0);
        assert_eq!(m.len(), 1);
    }
}
