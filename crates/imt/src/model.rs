//! The inverse model — equivalence-class representation of a data plane
//! (§3.1 and Definition 6 of Appendix C).
//!
//! An [`InverseModel`] is a set of `(predicate, action-vector)` pairs that
//! is (1) unique in vectors, (2) mutually exclusive in predicates and
//! (3) complementary (the predicates union to the subspace universe). The
//! model-overwrite operator `⊗` (Definition 9) is implemented as the
//! paper's "cross product".
//!
//! Predicates are rooted [`Pred`] handles: the model never has to collect
//! roots or remap ids — the engine's automatic mark-sweep GC keeps every
//! entry alive for exactly as long as the model holds it.

use crate::mr2::Overwrite;
use crate::pat::{PatId, PatStore, PAT_NIL};
use flash_bdd::{Pred, PredEngine};
use std::collections::HashMap;

/// One equivalence class: the headers in `pred` experience exactly the
/// network-wide forwarding behaviour `vector`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelEntry {
    pub pred: Pred,
    pub vector: PatId,
}

/// Coarse class overlap index: the first `k` header bits partition the
/// space into `2^k` cells; each class carries the bitmask of cells its
/// predicate is satisfiable in (from [`PredEngine::cell_mask`]), and
/// `cells[c]` lists every class whose mask has bit `c` set. An overwrite
/// then only probes classes that share at least one cell with it —
/// almost-all-disjoint class sets (the common case under prefix
/// workloads) skip almost every provably-false `and`.
///
/// Masks are maintained exactly on class add/remove/merge; when a class
/// *shrinks* (split) the old mask is kept as a conservative superset and
/// `slack` grows. Conservative masks only cost extra probes, never
/// correctness, and once slack exceeds the class count the whole index is
/// rebuilt from fresh probes (the "lazily rebuilt after churn" rule).
#[derive(Clone, Debug)]
struct OverlapIndex {
    offset: u32,
    k: u32,
    /// Parallel to `entries`: the (possibly conservative) cell mask.
    masks: Vec<u64>,
    /// Cell → indices of classes occupying it. Each class appears at most
    /// once per cell.
    cells: Vec<Vec<u32>>,
    /// Shrinks absorbed since the last rebuild (staleness pressure).
    slack: usize,
}

impl OverlapIndex {
    fn remove_from_cell(cell: &mut Vec<u32>, idx: u32) {
        if let Some(p) = cell.iter().position(|&x| x == idx) {
            cell.swap_remove(p);
        }
    }
}

/// Counters describing how much scanning the overlap index avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Candidate classes actually probed by indexed overwrite application.
    pub probed: u64,
    /// Classes skipped outright (no shared cell with the overwrite).
    pub pruned: u64,
    /// Full index rebuilds (including the initial lazy build).
    pub rebuilds: u64,
}

/// The equivalence-class representation `M = {(p_j, y_j)}`.
#[derive(Clone, Debug)]
pub struct InverseModel {
    /// The universe predicate of this model's subspace (TRUE for a
    /// whole-network model).
    universe: Pred,
    entries: Vec<ModelEntry>,
    /// vector → index into `entries`, maintaining the uniqueness invariant.
    by_vector: HashMap<PatId, usize>,
    /// The cell-level overlap index; `None` until the first indexed
    /// overwrite builds it (or always when disabled).
    index: Option<OverlapIndex>,
    index_enabled: bool,
    index_stats: IndexStats,
    /// Bumped whenever the **class composition** changes (an entry added
    /// or removed). Predicate-only mutations (splits/merges that keep the
    /// vector set) do not bump it: consumers key caches of
    /// per-class-vector data (e.g. fingerprints) off this counter.
    version: u64,
}

impl InverseModel {
    /// The initial model: the whole `universe` maps to the all-default
    /// action vector (every FIB is just its default rule).
    pub fn new(universe: Pred) -> Self {
        let mut by_vector = HashMap::new();
        by_vector.insert(PAT_NIL, 0);
        InverseModel {
            entries: vec![ModelEntry { pred: universe.clone(), vector: PAT_NIL }],
            universe,
            by_vector,
            index: None,
            index_enabled: true,
            index_stats: IndexStats::default(),
            version: 0,
        }
    }

    /// Monotonic class-composition version: changes exactly when an entry
    /// is added or removed (not on predicate-only splits/merges).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Enables or disables the class overlap index. Disabling drops the
    /// index and makes every overwrite a full linear scan (the reference
    /// behaviour); re-enabling pays one lazy rebuild on the next
    /// overwrite.
    pub fn set_index_enabled(&mut self, enabled: bool) {
        self.index_enabled = enabled;
        if !enabled {
            self.index = None;
        }
    }

    /// Index pruning/probing counters.
    pub fn index_stats(&self) -> IndexStats {
        self.index_stats
    }

    /// Whether the overlap index is currently materialized.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    pub fn universe(&self) -> &Pred {
        &self.universe
    }

    /// Number of equivalence classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// The entry whose predicate contains the concrete header `bits`.
    ///
    /// With a materialized overlap index only the classes sharing the
    /// header's cell are `eval`-scanned (complementarity guarantees the
    /// owning class is among them, because every mask is a superset of
    /// the true cell set); otherwise this is a full linear scan.
    pub fn classify(&self, engine: &PredEngine, bits: &[bool]) -> Option<ModelEntry> {
        if let Some(ix) = &self.index {
            let mut cell = 0usize;
            for d in 0..ix.k {
                let b = *bits.get((ix.offset + d) as usize)?;
                cell = (cell << 1) | b as usize;
            }
            return ix.cells[cell]
                .iter()
                .map(|&j| &self.entries[j as usize])
                .find(|e| engine.eval(&e.pred, bits))
                .cloned();
        }
        self.classify_linear(engine, bits)
    }

    /// The index-free reference scan behind [`InverseModel::classify`].
    pub fn classify_linear(&self, engine: &PredEngine, bits: &[bool]) -> Option<ModelEntry> {
        self.entries.iter().find(|e| engine.eval(&e.pred, bits)).cloned()
    }

    /// Applies one conflict-free overwrite via the cross product
    /// (Definition 9): every class intersecting `ow.pred` is split; the
    /// intersected part moves to the class with `ow.writes` applied.
    ///
    /// Returns the number of classes whose predicate intersected the
    /// overwrite.
    pub fn apply_overwrite(
        &mut self,
        engine: &mut PredEngine,
        pat: &mut PatStore,
        ow: &Overwrite,
    ) -> usize {
        if ow.pred.is_false() || ow.writes.is_empty() {
            return 0;
        }
        if !self.index_enabled {
            return self.apply_overwrite_scan(engine, pat, ow);
        }
        if self.index.is_none() {
            self.rebuild_index(engine);
        }
        if self.index.is_none() {
            // Degenerate space (no header bits to index on).
            return self.apply_overwrite_scan(engine, pat, ow);
        }
        self.apply_overwrite_indexed(engine, pat, ow)
    }

    /// The pre-index reference implementation: a full linear scan over
    /// every class. Retained verbatim for the indexed-vs-linear
    /// equivalence suite. Drops the index (it would go stale); callers
    /// wanting the fast path again pay one lazy rebuild.
    pub fn apply_overwrite_linear(
        &mut self,
        engine: &mut PredEngine,
        pat: &mut PatStore,
        ow: &Overwrite,
    ) -> usize {
        if ow.pred.is_false() || ow.writes.is_empty() {
            return 0;
        }
        self.index = None;
        self.apply_overwrite_scan(engine, pat, ow)
    }

    fn apply_overwrite_scan(
        &mut self,
        engine: &mut PredEngine,
        pat: &mut PatStore,
        ow: &Overwrite,
    ) -> usize {
        debug_assert!(self.index.is_none(), "scan path would desync the index");
        let mut touched = 0usize;
        // (new_vector, predicate-to-add) accumulated across splits.
        let mut moved: Vec<(PatId, Pred)> = Vec::new();
        // Class predicates are pairwise disjoint, so the still-unmatched
        // part of the overwrite shrinks as classes consume it; once it is
        // empty no later class can intersect and the scan stops early.
        let mut remaining = ow.pred.clone();
        let mut i = 0;
        while i < self.entries.len() {
            if remaining.is_false() {
                break;
            }
            let (e_pred, e_vector) = {
                let e = &self.entries[i];
                (e.pred.clone(), e.vector)
            };
            let inter = engine.and(&e_pred, &remaining);
            if inter.is_false() {
                i += 1;
                continue;
            }
            touched += 1;
            remaining = engine.diff(&remaining, &inter);
            let new_vec = pat.overwrite(e_vector, &ow.writes);
            if new_vec == e_vector {
                // Overwrite is a no-op for this class (writes repeat the
                // existing actions); nothing moves.
                i += 1;
                continue;
            }
            let rest = engine.diff(&e_pred, &inter);
            moved.push((new_vec, inter));
            if rest.is_false() {
                // Whole class moves: remove it.
                self.remove_at(i);
                // Do not advance i: a new entry occupies this slot.
            } else {
                self.entries[i].pred = rest;
                i += 1;
            }
        }
        for (vec, pred) in moved {
            self.add_pred(engine, vec, pred);
        }
        touched
    }

    /// Index-assisted overwrite application: one cheap cell probe on the
    /// overwrite predicate, then only the classes sharing a cell are
    /// `and`-tested. Candidates are visited in **descending** index order
    /// so `swap_remove` (which only moves the last entry down into the
    /// removed slot) can never invalidate a not-yet-visited candidate:
    /// any entry above the current one was either already visited or was
    /// not a candidate at all.
    fn apply_overwrite_indexed(
        &mut self,
        engine: &mut PredEngine,
        pat: &mut PatStore,
        ow: &Overwrite,
    ) -> usize {
        let (offset, k) = {
            let ix = self.index.as_ref().expect("indexed path requires index");
            (ix.offset, ix.k)
        };
        let ow_mask = engine.cell_mask(&ow.pred, offset, k);
        let mut cand: Vec<u32> = Vec::new();
        {
            let ix = self.index.as_ref().expect("indexed path requires index");
            let mut bits = ow_mask;
            while bits != 0 {
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                cand.extend_from_slice(&ix.cells[c]);
            }
        }
        cand.sort_unstable_by(|a, b| b.cmp(a));
        cand.dedup();
        self.index_stats.probed += cand.len() as u64;
        self.index_stats.pruned += (self.entries.len() - cand.len()) as u64;

        let mut touched = 0usize;
        let mut moved: Vec<(PatId, Pred)> = Vec::new();
        let mut remaining = ow.pred.clone();
        // Cells the still-unmatched remainder can occupy. Re-probed (one
        // cheap cell walk, never past the cell bits) each time a class
        // consumes part of the overwrite; candidates whose mask misses
        // the shrunk remainder are pruned without an `and`.
        let mut remaining_mask = ow_mask;
        let n_cand = cand.len();
        for (pos, idx) in cand.into_iter().enumerate() {
            if remaining.is_false() {
                break;
            }
            let i = idx as usize;
            let class_mask = match &self.index {
                Some(ix) => ix.masks[i],
                None => u64::MAX,
            };
            if class_mask & remaining_mask == 0 {
                self.index_stats.pruned += 1;
                continue;
            }
            let (e_pred, e_vector) = {
                let e = &self.entries[i];
                (e.pred.clone(), e.vector)
            };
            let inter = engine.and(&e_pred, &remaining);
            if inter.is_false() {
                continue;
            }
            touched += 1;
            remaining = engine.diff(&remaining, &inter);
            // Re-probe only while later candidates could still be pruned
            // by the shrunk mask (typical overwrites touch one class, and
            // it is usually the last candidate — no probe at all then).
            if pos + 1 < n_cand {
                remaining_mask = engine.cell_mask(&remaining, offset, k);
            }
            let new_vec = pat.overwrite(e_vector, &ow.writes);
            if new_vec == e_vector {
                continue;
            }
            let rest = engine.diff(&e_pred, &inter);
            moved.push((new_vec, inter));
            if rest.is_false() {
                self.remove_at(i);
            } else {
                self.entries[i].pred = rest;
                // The old mask stays as a conservative superset of the
                // shrunk predicate's cells; record the staleness.
                if let Some(ix) = &mut self.index {
                    ix.slack += 1;
                }
            }
        }
        for (vec, pred) in moved {
            self.add_pred(engine, vec, pred);
        }
        self.maybe_rebuild_index(engine);
        touched
    }

    /// Rebuilds the overlap index from fresh cell probes of every class.
    pub fn rebuild_index(&mut self, engine: &mut PredEngine) {
        if !self.index_enabled {
            return;
        }
        let k = engine.num_vars().min(6);
        if k == 0 {
            self.index = None;
            return;
        }
        let offset = 0;
        let mut ix = OverlapIndex {
            offset,
            k,
            masks: Vec::with_capacity(self.entries.len()),
            cells: vec![Vec::new(); 1usize << k],
            slack: 0,
        };
        for (j, e) in self.entries.iter().enumerate() {
            let m = engine.cell_mask(&e.pred, offset, k);
            let mut bits = m;
            while bits != 0 {
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                ix.cells[c].push(j as u32);
            }
            ix.masks.push(m);
        }
        self.index_stats.rebuilds += 1;
        self.index = Some(ix);
    }

    /// Rebuild once accumulated shrink-staleness outweighs the class
    /// count — conservative masks then prune too little to be worth
    /// keeping.
    fn maybe_rebuild_index(&mut self, engine: &mut PredEngine) {
        let stale = match &self.index {
            Some(ix) => ix.slack > self.entries.len().max(64),
            None => false,
        };
        if stale {
            self.rebuild_index(engine);
        }
    }

    /// Applies a batch of overwrites in order (they compose by Lemma 1).
    pub fn apply_overwrites(
        &mut self,
        engine: &mut PredEngine,
        pat: &mut PatStore,
        ows: &[Overwrite],
    ) -> usize {
        ows.iter().map(|ow| self.apply_overwrite(engine, pat, ow)).sum()
    }

    fn remove_at(&mut self, i: usize) {
        self.version += 1;
        let removed = self.entries.swap_remove(i);
        self.by_vector.remove(&removed.vector);
        if i < self.entries.len() {
            let moved_vec = self.entries[i].vector;
            self.by_vector.insert(moved_vec, i);
        }
        if let Some(ix) = &mut self.index {
            // Unhook the removed class from its cells, then repoint the
            // entry that swap_remove relocated from the end to slot `i`.
            let dead = ix.masks[i];
            let mut bits = dead;
            while bits != 0 {
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                OverlapIndex::remove_from_cell(&mut ix.cells[c], i as u32);
            }
            ix.masks.swap_remove(i);
            if i < ix.masks.len() {
                let old = ix.masks.len() as u32;
                let mut bits = ix.masks[i];
                while bits != 0 {
                    let c = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    for x in ix.cells[c].iter_mut() {
                        if *x == old {
                            *x = i as u32;
                        }
                    }
                }
            }
        }
    }

    /// Adds `pred` to the class with vector `vec`, creating it if needed.
    /// Index maintenance here is exact: `cell_mask(a ∨ b) = cell_mask(a)
    /// | cell_mask(b)`, so merging ORs the masks.
    fn add_pred(&mut self, engine: &mut PredEngine, vec: PatId, pred: Pred) {
        if pred.is_false() {
            return;
        }
        let mask = match &self.index {
            Some(ix) => engine.cell_mask(&pred, ix.offset, ix.k),
            None => 0,
        };
        match self.by_vector.get(&vec) {
            Some(&i) => {
                let merged = engine.or(&self.entries[i].pred, &pred);
                self.entries[i].pred = merged;
                if let Some(ix) = &mut self.index {
                    let mut fresh = mask & !ix.masks[i];
                    while fresh != 0 {
                        let c = fresh.trailing_zeros() as usize;
                        fresh &= fresh - 1;
                        ix.cells[c].push(i as u32);
                    }
                    ix.masks[i] |= mask;
                }
            }
            None => {
                self.version += 1;
                let j = self.entries.len();
                self.by_vector.insert(vec, j);
                self.entries.push(ModelEntry { pred, vector: vec });
                if let Some(ix) = &mut self.index {
                    let mut bits = mask;
                    while bits != 0 {
                        let c = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        ix.cells[c].push(j as u32);
                    }
                    ix.masks.push(mask);
                }
            }
        }
    }

    /// Checks the three validity invariants of Definition 6. `O(|M|²)`
    /// predicate work — test/debug use only.
    pub fn check_invariants(&self, engine: &mut PredEngine) -> Result<(), String> {
        // unique vectors
        let mut seen = std::collections::HashSet::new();
        for e in &self.entries {
            if !seen.insert(e.vector) {
                return Err(format!("duplicate action vector {:?}", e.vector));
            }
            if e.pred.is_false() {
                return Err("empty predicate in model".into());
            }
        }
        // mutually exclusive
        for i in 0..self.entries.len() {
            for j in (i + 1)..self.entries.len() {
                if !engine.disjoint(&self.entries[i].pred, &self.entries[j].pred) {
                    return Err(format!("classes {i} and {j} overlap"));
                }
            }
        }
        // complementary w.r.t. the universe
        let union = engine.or_many(self.entries.iter().map(|e| &e.pred));
        if union != self.universe {
            return Err("classes do not cover the universe".into());
        }
        // overlap-index consistency: every stored mask is a superset of the
        // true cell mask, and the cell lists mirror the masks exactly.
        if let Some(ix) = &self.index {
            if ix.masks.len() != self.entries.len() {
                return Err("index mask count diverges from class count".into());
            }
            let true_masks: Vec<u64> = self
                .entries
                .iter()
                .map(|e| engine.cell_mask(&e.pred, ix.offset, ix.k))
                .collect();
            for (j, &tm) in true_masks.iter().enumerate() {
                if tm & !ix.masks[j] != 0 {
                    return Err(format!("index mask of class {j} is not a superset"));
                }
                let mut bits = ix.masks[j];
                while bits != 0 {
                    let c = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if !ix.cells[c].contains(&(j as u32)) {
                        return Err(format!("class {j} missing from cell {c}"));
                    }
                }
            }
            for (c, cell) in ix.cells.iter().enumerate() {
                let mut seen_in_cell = std::collections::HashSet::new();
                for &j in cell {
                    if j as usize >= self.entries.len() {
                        return Err(format!("cell {c} references dead class {j}"));
                    }
                    if ix.masks[j as usize] & (1u64 << c) == 0 {
                        return Err(format!("cell {c} lists class {j} whose mask lacks it"));
                    }
                    if !seen_in_cell.insert(j) {
                        return Err(format!("cell {c} lists class {j} twice"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Approximate resident bytes (entries + index), excluding the shared
    /// BDD/PAT arenas which are reported by their own stores.
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<ModelEntry>() + self.by_vector.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_netmodel::{ActionId, DeviceId};

    fn ow(pred: Pred, writes: Vec<(u32, u32)>) -> Overwrite {
        Overwrite {
            pred,
            writes: writes
                .into_iter()
                .map(|(d, a)| (DeviceId(d), ActionId(a)))
                .collect(),
        }
    }

    #[test]
    fn initial_model_is_single_default_class() {
        let e = PredEngine::new(8);
        let m = InverseModel::new(e.true_pred());
        assert_eq!(m.len(), 1);
        assert_eq!(m.entries()[0].vector, PAT_NIL);
        assert!(m.entries()[0].pred.is_true());
    }

    #[test]
    fn overwrite_splits_a_class() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p = e.prefix(0, 8, 0xA0, 4);
        let touched = m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, 1)]));
        assert_eq!(touched, 1);
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut e).unwrap();
    }

    #[test]
    fn overwrite_with_same_action_is_noop() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p = e.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, 1)]));
        let len = m.len();
        // Rewriting the same action on a sub-predicate must not split.
        let sub = e.prefix(0, 8, 0xA8, 5);
        m.apply_overwrite(&mut e, &mut pat, &ow(sub, vec![(0, 1)]));
        assert_eq!(m.len(), len);
        m.check_invariants(&mut e).unwrap();
    }

    #[test]
    fn classes_with_equal_vectors_merge() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p1 = e.prefix(0, 8, 0xA0, 4);
        let p2 = e.prefix(0, 8, 0xB0, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p1, vec![(0, 1)]));
        m.apply_overwrite(&mut e, &mut pat, &ow(p2, vec![(0, 1)]));
        // Both prefixes map device 0 to action 1 → must be ONE class.
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut e).unwrap();
    }

    #[test]
    fn whole_class_moves_when_covered() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p = e.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p.clone(), vec![(0, 1)]));
        // Now overwrite the exact same predicate with a different action:
        // the (p, [0→1]) class must fully move, not leave an empty shell.
        m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, 2)]));
        assert_eq!(m.len(), 2);
        m.check_invariants(&mut e).unwrap();
        for entry in m.entries() {
            assert!(!entry.pred.is_false());
        }
    }

    #[test]
    fn classify_finds_the_unique_class() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let p = e.prefix(0, 8, 0xA0, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, 1)]));
        let bits_a: Vec<bool> = (0..8).map(|i| (0xA5u8 >> (7 - i)) & 1 == 1).collect();
        let entry = m.classify(&e, &bits_a).unwrap();
        assert_eq!(pat.get(entry.vector, DeviceId(0)), ActionId(1));
        let bits_b: Vec<bool> = (0..8).map(|i| (0x15u8 >> (7 - i)) & 1 == 1).collect();
        let entry = m.classify(&e, &bits_b).unwrap();
        assert_eq!(entry.vector, PAT_NIL);
    }

    #[test]
    fn subspace_universe_respected() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let universe = e.prefix(0, 8, 0x80, 1); // top half of the space
        let mut m = InverseModel::new(universe.clone());
        let p = e.prefix(0, 8, 0xA0, 4);
        let clipped = e.and(&p, &universe);
        m.apply_overwrite(&mut e, &mut pat, &ow(clipped, vec![(0, 1)]));
        m.check_invariants(&mut e).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn gc_roundtrip() {
        let mut e = PredEngine::new(16);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        for i in 0..8u64 {
            let p = e.prefix(0, 16, i << 12, 4);
            m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, (i + 1) as u32)]));
        }
        let before = m.len();
        // The model's handles are roots: a collection must not disturb it.
        let reclaimed = e.collect();
        assert_eq!(m.len(), before);
        m.check_invariants(&mut e).unwrap();
        // And a second collection is equally safe.
        e.collect();
        m.check_invariants(&mut e).unwrap();
        let _ = reclaimed;
    }

    #[test]
    fn classify_with_index_agrees_with_linear_scan() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        for i in 0..12u64 {
            let p = e.range(0, 8, i * 17, i * 17 + 23);
            m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(i as u32 % 3, (i + 1) as u32)]));
        }
        assert!(m.has_index(), "overwrites must have built the index");
        for h in 0..256u64 {
            let bits: Vec<bool> = (0..8).map(|i| (h >> (7 - i)) & 1 == 1).collect();
            let via_index = m.classify(&e, &bits).map(|en| en.vector);
            let via_scan = m.classify_linear(&e, &bits).map(|en| en.vector);
            assert_eq!(via_index, via_scan, "header {h}");
        }
    }

    #[test]
    fn indexed_and_linear_application_agree() {
        let mk = |indexed: bool| {
            let mut e = PredEngine::new(8);
            let mut pat = PatStore::new();
            let mut m = InverseModel::new(e.true_pred());
            m.set_index_enabled(indexed);
            for i in 0..20u64 {
                let p = e.range(0, 8, (i * 31) % 240, (i * 31) % 240 + 19);
                m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(i as u32 % 4, (i % 5 + 1) as u32)]));
            }
            m.check_invariants(&mut e).unwrap();
            // Order-independent fingerprint: the set of (sat-count, vector
            // entries) pairs.
            let mut keys: Vec<(u64, Vec<(u32, u32)>)> = m
                .entries()
                .iter()
                .map(|en| {
                    (
                        e.sat_count(&en.pred) as u64,
                        pat.entries(en.vector)
                            .into_iter()
                            .map(|(d, a)| (d.0, a.0))
                            .collect(),
                    )
                })
                .collect();
            keys.sort();
            keys
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn index_prunes_disjoint_classes() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        // 16 disjoint /4 classes, then touch exactly one of them.
        for i in 0..16u64 {
            let p = e.prefix(0, 8, i << 4, 4);
            m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(0, (i + 1) as u32)]));
        }
        let before = m.index_stats();
        let p = e.prefix(0, 8, 0x30, 4);
        m.apply_overwrite(&mut e, &mut pat, &ow(p, vec![(1, 9)]));
        let after = m.index_stats();
        assert!(
            after.pruned > before.pruned,
            "a one-cell overwrite against disjoint classes must prune"
        );
        m.check_invariants(&mut e).unwrap();
    }

    #[test]
    fn empty_overwrite_is_ignored() {
        let mut e = PredEngine::new(8);
        let mut pat = PatStore::new();
        let mut m = InverseModel::new(e.true_pred());
        let f = e.false_pred();
        let t = e.true_pred();
        assert_eq!(m.apply_overwrite(&mut e, &mut pat, &ow(f, vec![(0, 1)])), 0);
        assert_eq!(m.apply_overwrite(&mut e, &mut pat, &ow(t, vec![])), 0);
        assert_eq!(m.len(), 1);
    }
}
